#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

/// \file hash.h
/// The two content hashes shared across the repo, hoisted out of their
/// original private homes so every user agrees on one implementation:
///
///   - FNV-1a 64 (journal/exploration config hashes, the service result
///     cache's content addresses, folded_curve's distance-sequence
///     certificates) — fast, incremental, good avalanche for content
///     addressing; NOT collision-resistant against adversaries, so it
///     keys caches and certificates, never security decisions;
///   - CRC-32 (IEEE 802.3) — the corruption detector framing every
///     journal record and every service protocol frame.

namespace dr::support {

inline constexpr std::uint64_t kFnvOffset64 = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime64 = 1099511628211ULL;

/// One FNV-1a step: fold `byte` into the running hash `h`.
constexpr std::uint64_t fnv1aByte(std::uint64_t h,
                                  std::uint8_t byte) noexcept {
  return (h ^ byte) * kFnvPrime64;
}

/// Fold a 64-bit value into the running hash, little-endian byte order
/// (used by folded_curve for i64 stack-distance sequences).
constexpr std::uint64_t fnv1aU64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) h = fnv1aByte(h, static_cast<std::uint8_t>(v >> (8 * i)));
  return h;
}

/// FNV-1a 64 of a byte string, continuing from `seed` (chain calls to
/// hash a composite value incrementally).
constexpr std::uint64_t fnv1a(std::string_view bytes,
                              std::uint64_t seed = kFnvOffset64) noexcept {
  std::uint64_t h = seed;
  for (char c : bytes) h = fnv1aByte(h, static_cast<std::uint8_t>(c));
  return h;
}

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `size` bytes. `seed`
/// chains partial computations: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace dr::support
