#include "support/intmath.h"

#include <limits>

#include "support/contracts.h"

namespace dr::support {

namespace {
constexpr i64 kMax = std::numeric_limits<i64>::max();
constexpr i64 kMin = std::numeric_limits<i64>::min();
}  // namespace

i64 gcd(i64 a, i64 b) noexcept {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  i64 g = gcd(a, b);
  return checkedMul(a / g, b);
}

i64 floorDiv(i64 a, i64 b) {
  DR_REQUIRE(b != 0);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

i64 ceilDiv(i64 a, i64 b) {
  DR_REQUIRE(b != 0);
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

i64 mod(i64 a, i64 b) {
  DR_REQUIRE(b != 0);
  i64 r = a % b;
  if (r < 0) r += (b < 0 ? -b : b);
  return r;
}

i64 checkedAdd(i64 a, i64 b) {
  i64 r;
  if (__builtin_add_overflow(a, b, &r))
    raiseOverflow("checkedAdd(a, b)", __FILE__, __LINE__,
                  "integer overflow in add");
  return r;
}

i64 checkedSub(i64 a, i64 b) {
  i64 r;
  if (__builtin_sub_overflow(a, b, &r))
    raiseOverflow("checkedSub(a, b)", __FILE__, __LINE__,
                  "integer overflow in sub");
  return r;
}

i64 checkedMul(i64 a, i64 b) {
  i64 r;
  if (__builtin_mul_overflow(a, b, &r))
    raiseOverflow("checkedMul(a, b)", __FILE__, __LINE__,
                  "integer overflow in mul");
  return r;
}

Rational::Rational(i64 n, i64 d) : num_(n), den_(d) {
  DR_REQUIRE(d != 0);
  DR_REQUIRE_MSG(n != kMin && d != kMin, "rational operand out of range");
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  i64 g = gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  (void)kMax;
}

Rational Rational::operator+(const Rational& o) const {
  i64 g = gcd(den_, o.den_);
  i64 dl = den_ / g;
  i64 dr = o.den_ / g;
  return Rational(checkedAdd(checkedMul(num_, dr), checkedMul(o.num_, dl)),
                  checkedMul(den_, dr));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce first to keep intermediates small.
  i64 g1 = gcd(num_, o.den_);
  i64 g2 = gcd(o.num_, den_);
  return Rational(checkedMul(num_ / g1, o.num_ / g2),
                  checkedMul(den_ / g2, o.den_ / g1));
}

Rational Rational::operator/(const Rational& o) const {
  DR_REQUIRE(o.num_ != 0);
  return *this * Rational(o.den_, o.num_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

bool Rational::operator<(const Rational& o) const {
  // num_/den_ < o.num_/o.den_  <=>  num_*o.den_ < o.num_*den_ (dens > 0).
  return checkedMul(num_, o.den_) < checkedMul(o.num_, den_);
}

std::string Rational::str() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace dr::support
