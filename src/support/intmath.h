#pragma once

#include <cstdint>
#include <string>

/// \file intmath.h
/// Exact integer arithmetic helpers used by the analytical reuse model:
/// gcd/lcm, floor/ceil division with mathematically correct behaviour for
/// negative operands, overflow-checked multiply/add, and an exact Rational
/// type for reuse factors (which are ratios of access counts, eq. (1)).

namespace dr::support {

using i64 = std::int64_t;

/// Greatest common divisor; gcd(0,0) == 0, result is always >= 0.
i64 gcd(i64 a, i64 b) noexcept;

/// Least common multiple; lcm(0,x) == 0. Precondition: no overflow.
i64 lcm(i64 a, i64 b);

/// Floor division: floorDiv(-7, 2) == -4. Precondition: b != 0.
i64 floorDiv(i64 a, i64 b);

/// Ceiling division: ceilDiv(-7, 2) == -3. Precondition: b != 0.
i64 ceilDiv(i64 a, i64 b);

/// Mathematical modulo with result in [0, |b|): mod(-7, 3) == 2.
i64 mod(i64 a, i64 b);

/// Overflow-checked arithmetic; throw ContractViolation on overflow.
i64 checkedAdd(i64 a, i64 b);
i64 checkedSub(i64 a, i64 b);
i64 checkedMul(i64 a, i64 b);

/// Exact rational number with canonical form (gcd-reduced, denominator > 0).
///
/// Data reuse factors F_R = C_tot / C_j (paper eq. (1)) are exact rationals;
/// keeping them exact lets the test suite compare analytic and simulated
/// factors without floating-point tolerance.
class Rational {
 public:
  /// Value 0/1.
  constexpr Rational() = default;

  /// Value n/1.
  Rational(i64 n) : num_(n) {}  // NOLINT(google-explicit-constructor)

  /// Value n/d, reduced. Precondition: d != 0.
  Rational(i64 n, i64 d);

  i64 num() const noexcept { return num_; }
  i64 den() const noexcept { return den_; }

  double toDouble() const noexcept {
    return static_cast<double>(num_) / static_cast<double>(den_);
  }

  bool isInteger() const noexcept { return den_ == 1; }

  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  /// Precondition: o != 0.
  Rational operator/(const Rational& o) const;
  Rational operator-() const;

  bool operator==(const Rational& o) const noexcept {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const noexcept { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return *this < o || *this == o; }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return o <= *this; }

  /// "7/2" or "7" when the denominator is 1.
  std::string str() const;

 private:
  i64 num_ = 0;
  i64 den_ = 1;
};

}  // namespace dr::support
