#include "support/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "support/contracts.h"
#include "support/fault.h"

namespace dr::support {

namespace {

constexpr std::uint8_t kRecHeader = 1;
constexpr std::uint8_t kRecPoint = 2;
constexpr std::uint8_t kRecCommit = 3;
constexpr std::uint8_t kRecMeta = 4;

constexpr std::uint32_t kMagic = 0x4C4A5244;  // "DRJL"

/// Upper bound on one record's payload: keeps a corrupted length field
/// from sending the parser (or a fuzzer) past the buffer in one hop.
constexpr std::uint32_t kMaxPayload = 1u << 20;

// --- little-endian scalar encoding (explicit, so journals are portable
// across hosts and the CRC covers a well-defined byte sequence) ---

void putU32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void putU64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void putI64(std::string& out, i64 v) { putU64(out, static_cast<std::uint64_t>(v)); }

/// Bounds-checked little-endian reader over a record payload.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  bool ok() const noexcept { return ok_; }
  bool atEnd() const noexcept { return pos_ == bytes_.size(); }

  std::uint8_t u8() { return static_cast<std::uint8_t>(take(1)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(take(4)); }
  std::uint64_t u64() { return take(8); }
  i64 i64v() { return static_cast<i64>(take(8)); }

  std::string str(std::uint32_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return {};
    }
    std::string s(bytes_.substr(pos_, n));
    pos_ += n;
    return s;
  }

 private:
  std::uint64_t take(std::size_t n) {
    if (!ok_ || bytes_.size() - pos_ < n) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i)
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(bytes_[pos_ + i]))
           << (8 * i);
    pos_ += n;
    return v;
  }

  std::string_view bytes_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

std::string encodeHeader(const JournalHeader& h) {
  std::string p;
  putU32(p, kMagic);
  putU32(p, kJournalFormatVersion);
  putU64(p, h.configHash);
  putU32(p, static_cast<std::uint32_t>(h.description.size()));
  p += h.description;
  return p;
}

std::string encodePoint(const JournalPoint& pt) {
  std::string p;
  putI64(p, pt.size);
  putI64(p, pt.writes);
  putI64(p, pt.reads);
  p.push_back(static_cast<char>(pt.fidelity));
  return p;
}

std::string encodeMeta(const JournalMeta& m) {
  std::string p;
  putI64(p, m.Ctot);
  putI64(p, m.distinct);
  p.push_back(static_cast<char>(m.fidelity));
  p.push_back(static_cast<char>(m.folded));
  p.push_back(static_cast<char>(m.exact));
  putI64(p, m.totalEvents);
  putI64(p, m.simulatedEvents);
  putI64(p, m.period);
  putI64(p, m.repeatCount);
  putI64(p, m.warmupEvents);
  putI64(p, m.foldPeriodChunks);
  return p;
}

std::string frameRecord(std::uint8_t type, const std::string& payload) {
  std::string rec;
  rec.push_back(static_cast<char>(type));
  putU32(rec, static_cast<std::uint32_t>(payload.size()));
  rec += payload;
  putU32(rec, crc32(rec.data(), rec.size()));
  return rec;
}

Status ioError(const std::string& what) {
  return Status::error(StatusCode::IoError,
                       what + ": " + std::strerror(errno));
}

Status writeAll(int fd, const char* data, std::size_t size) {
  // The DiskFull probe models ENOSPC on the cache-dir filesystem: the
  // journal layer must surface a structured IoError (the committed
  // prefix stays valid), and the service cache above degrades to an
  // unjournaled recompute instead of failing the query.
  if (fault::shouldFail(fault::FaultSite::DiskFull)) {
    errno = ENOSPC;
    return ioError("journal write failed");
  }
  while (size > 0) {
    ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ioError("journal write failed");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return Status::ok();
}

}  // namespace

Expected<JournalContents> parseJournal(std::string_view bytes) {
  JournalContents out;
  bool haveHeader = false;
  // Records staged since the last commit marker; promoted to `out` only
  // when a valid commit seals them — the durability contract's "committed
  // points are exact, the tail is discarded".
  std::vector<JournalPoint> pendingPoints;
  bool pendingHasMeta = false;
  JournalMeta pendingMeta;
  i64 pointsSealed = 0;

  std::size_t off = 0;
  while (off < bytes.size()) {
    // Frame: type(1) + len(4) + payload + crc(4).
    if (bytes.size() - off < 9) break;
    Reader frame(bytes.substr(off, 5));
    const std::uint8_t type = frame.u8();
    const std::uint32_t len = frame.u32();
    if (len > kMaxPayload || bytes.size() - off - 9 < len) break;
    const std::string_view payload = bytes.substr(off + 5, len);
    Reader crcReader(bytes.substr(off + 5 + len, 4));
    const std::uint32_t storedCrc = crcReader.u32();
    if (crc32(bytes.data() + off, 5 + len) != storedCrc) break;

    if (!haveHeader) {
      if (type != kRecHeader) break;
      Reader r(payload);
      const std::uint32_t magic = r.u32();
      const std::uint32_t version = r.u32();
      out.header.configHash = r.u64();
      const std::uint32_t descLen = r.u32();
      out.header.description = r.str(descLen);
      if (!r.ok() || !r.atEnd() || magic != kMagic) break;
      if (version != kJournalFormatVersion)
        return Status::error(
            StatusCode::InvalidInput,
            "journal format version " + std::to_string(version) +
                " != supported " + std::to_string(kJournalFormatVersion));
      haveHeader = true;
    } else if (type == kRecPoint) {
      Reader r(payload);
      JournalPoint pt;
      pt.size = r.i64v();
      pt.writes = r.i64v();
      pt.reads = r.i64v();
      pt.fidelity = r.u8();
      if (!r.ok() || !r.atEnd()) break;
      pendingPoints.push_back(pt);
    } else if (type == kRecMeta) {
      Reader r(payload);
      JournalMeta m;
      m.Ctot = r.i64v();
      m.distinct = r.i64v();
      m.fidelity = r.u8();
      m.folded = r.u8();
      m.exact = r.u8();
      m.totalEvents = r.i64v();
      m.simulatedEvents = r.i64v();
      m.period = r.i64v();
      m.repeatCount = r.i64v();
      m.warmupEvents = r.i64v();
      m.foldPeriodChunks = r.i64v();
      if (!r.ok() || !r.atEnd()) break;
      pendingMeta = m;
      pendingHasMeta = true;
    } else if (type == kRecCommit) {
      Reader r(payload);
      const i64 claimed = static_cast<i64>(r.u64());
      if (!r.ok() || !r.atEnd()) break;
      // The marker's point count cross-checks the record sequence: a
      // mismatch means records were lost or reordered, so the commit (and
      // everything after) is untrustworthy.
      const i64 sealing =
          pointsSealed + static_cast<i64>(pendingPoints.size());
      if (claimed != sealing) break;
      out.points.insert(out.points.end(), pendingPoints.begin(),
                        pendingPoints.end());
      pendingPoints.clear();
      if (pendingHasMeta) {
        out.meta = pendingMeta;
        out.hasMeta = true;
        pendingHasMeta = false;
      }
      pointsSealed = sealing;
      out.committedBytes = static_cast<i64>(off + 9 + len);
      ++out.commitCount;
    } else {
      break;  // unknown record type: treat as corruption, stop here
    }
    off += 9 + len;
  }

  if (out.commitCount == 0)
    return Status::error(StatusCode::InvalidInput,
                         "no committed journal header found");
  out.droppedTailBytes =
      static_cast<i64>(bytes.size()) - out.committedBytes;
  return out;
}

Expected<JournalContents> loadJournal(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good())
    return Status::error(StatusCode::IoError,
                         "cannot open journal: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  if (f.bad())
    return Status::error(StatusCode::IoError,
                         "cannot read journal: " + path);
  const std::string bytes = ss.str();
  return parseJournal(bytes);
}

// --- JournalWriter ---

JournalWriter::JournalWriter(JournalWriter&& o) noexcept {
  // Moving while another thread appends is a caller bug; no lock needed.
  fd_ = std::exchange(o.fd_, -1);
  pointsAppended_ = o.pointsAppended_;
  pointsSinceCommit_ = o.pointsSinceCommit_;
  recordsSinceCommit_ = o.recordsSinceCommit_;
  commitEveryPoints_ = o.commitEveryPoints_;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) (void)close();
}

Expected<JournalWriter> JournalWriter::create(const std::string& path,
                                              const JournalHeader& header,
                                              i64 commitEveryPoints) {
  DR_REQUIRE(commitEveryPoints >= 1);
  // Same temp+rename discipline as DataSet::writeFile: the header lands
  // in a same-directory temp file first, so a crash mid-create leaves any
  // previous journal at `path` untouched and never a torn header. The fd
  // survives the rename (same inode), so appends continue at `path`.
  const std::string tmp = path + ".tmp";
  if (fault::shouldFail(fault::FaultSite::DiskFull)) {
    errno = ENOSPC;
    return ioError("cannot create journal " + tmp);
  }
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return ioError("cannot create journal " + tmp);

  JournalWriter w;
  w.fd_ = fd;
  w.commitEveryPoints_ = commitEveryPoints;
  {
    std::lock_guard<std::mutex> lock(w.mutex_);
    Status st = w.appendRecordLocked(kRecHeader, encodeHeader(header));
    if (st.isOk()) st = w.commitLocked();
    if (!st.isOk()) {
      ::close(std::exchange(w.fd_, -1));
      std::remove(tmp.c_str());
      return st;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status st = ioError("cannot rename " + tmp + " to " + path);
    ::close(std::exchange(w.fd_, -1));
    std::remove(tmp.c_str());
    return st;
  }
  return w;
}

Expected<JournalWriter> JournalWriter::resumeAt(
    const std::string& path, const JournalContents& contents,
    i64 commitEveryPoints) {
  DR_REQUIRE(commitEveryPoints >= 1);
  DR_REQUIRE(contents.committedBytes > 0);
  int fd = ::open(path.c_str(), O_WRONLY);
  if (fd < 0) return ioError("cannot open journal " + path);
  // Physically discard the torn tail so the on-disk file is exactly its
  // committed prefix before any new record lands after it.
  if (::ftruncate(fd, static_cast<off_t>(contents.committedBytes)) != 0) {
    Status st = ioError("cannot truncate journal " + path);
    ::close(fd);
    return st;
  }
  if (::lseek(fd, 0, SEEK_END) < 0) {
    Status st = ioError("cannot seek journal " + path);
    ::close(fd);
    return st;
  }
  JournalWriter w;
  w.fd_ = fd;
  w.commitEveryPoints_ = commitEveryPoints;
  w.pointsAppended_ = static_cast<i64>(contents.points.size());
  return w;
}

Status JournalWriter::appendRecordLocked(std::uint8_t type,
                                         const std::string& payload) {
  if (fd_ < 0)
    return Status::error(StatusCode::IoError, "journal writer is closed");
  const std::string rec = frameRecord(type, payload);
  Status st = writeAll(fd_, rec.data(), rec.size());
  if (st.isOk()) ++recordsSinceCommit_;
  return st;
}

Status JournalWriter::commitLocked() {
  if (fd_ < 0)
    return Status::error(StatusCode::IoError, "journal writer is closed");
  if (recordsSinceCommit_ == 0) return Status::ok();
  std::string payload;
  putU64(payload, static_cast<std::uint64_t>(pointsAppended_));
  Status st = appendRecordLocked(kRecCommit, payload);
  if (!st.isOk()) return st;
  if (::fsync(fd_) != 0) return ioError("journal fsync failed");
  pointsSinceCommit_ = 0;
  recordsSinceCommit_ = 0;
  return Status::ok();
}

Status JournalWriter::appendPoint(const JournalPoint& pt) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status st = appendRecordLocked(kRecPoint, encodePoint(pt));
  if (!st.isOk()) return st;
  ++pointsAppended_;
  ++pointsSinceCommit_;
  if (pointsSinceCommit_ >= commitEveryPoints_) return commitLocked();
  return Status::ok();
}

Status JournalWriter::appendMeta(const JournalMeta& meta) {
  std::lock_guard<std::mutex> lock(mutex_);
  Status st = appendRecordLocked(kRecMeta, encodeMeta(meta));
  if (!st.isOk()) return st;
  return commitLocked();
}

Status JournalWriter::commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  return commitLocked();
}

Status JournalWriter::close() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return Status::ok();
  Status st = commitLocked();
  if (::close(std::exchange(fd_, -1)) != 0 && st.isOk())
    st = ioError("journal close failed");
  return st;
}

i64 JournalWriter::pointsAppended() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pointsAppended_;
}

}  // namespace dr::support
