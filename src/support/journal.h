#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "support/hash.h"
#include "support/intmath.h"
#include "support/status.h"

/// \file journal.h
/// Crash-safe run journal for long exploration sweeps: an append-only,
/// CRC-checksummed record stream persisting every completed curve point
/// so an interrupted run (crash, OOM kill, budget trip) resumes from its
/// durable prefix instead of discarding hours of exact OPT/LRU work.
///
/// File layout: one Header record, then Meta/Point records interleaved
/// with Commit markers. Every record is framed
///
///   [u8 type][u32 payloadLen][payload bytes][u32 crc32(type|len|payload)]
///
/// so any torn or corrupted suffix is detected on load. Durability
/// contract (see CONTRIBUTING.md "Durability semantics"):
///   - the file is *created* via the same-directory temp+rename
///     discipline DataSet uses, so a half-written header never exists at
///     the journal path;
///   - Commit markers are fsync'd; everything up to the last valid Commit
///     is durable, everything after it (a torn tail from a crash
///     mid-append) is detected, reported, and truncated on load — never
///     silently replayed and never double-counted;
///   - a resuming writer physically truncates the file back to the last
///     commit before appending, so the committed prefix of a journal only
///     ever grows.
///
/// Writes are single-writer, mutex-guarded: one JournalWriter may be
/// shared by a whole parallel sweep (the per-point tasks of the explorer
/// append concurrently), with the record stream staying a clean sequence.

namespace dr::support {

// crc32() historically lived here; it is now shared with the service
// protocol framing and declared in support/hash.h (included above).

/// Journal format version; bump on any framing/payload layout change.
/// A loaded journal with a different version is rejected (clean restart).
inline constexpr std::uint32_t kJournalFormatVersion = 1;

/// Identifies the run a journal belongs to. `configHash` must cover
/// everything that determines the journaled results (kernel text, signal,
/// engine configuration, size-grid parameters, and an engine code-version
/// constant) — a mismatch on load means the journal answers a different
/// question and is discarded.
struct JournalHeader {
  std::uint64_t configHash = 0;
  std::string description;  ///< free-form, for humans ("kernel=..., signal=...")

  bool operator==(const JournalHeader&) const = default;
};

/// One durable curve point: exact miss counts for one copy size.
/// `fidelity` stores the simcore::Fidelity rung as a raw byte so support/
/// stays below simcore/ in the dependency order.
struct JournalPoint {
  i64 size = 0;
  i64 writes = 0;  ///< C_j: misses / fills of the copy
  i64 reads = 0;   ///< C_tot served
  std::uint8_t fidelity = 0;

  bool operator==(const JournalPoint&) const = default;
};

/// Stream-level totals, written once the simulation engine finished its
/// pass: lets a resumed run reconstruct the curve (and skip the engine
/// entirely) without re-walking the trace.
struct JournalMeta {
  i64 Ctot = 0;
  i64 distinct = 0;
  std::uint8_t fidelity = 0;  ///< ladder rung of the journaled run
  std::uint8_t folded = 0;
  std::uint8_t exact = 1;
  i64 totalEvents = 0;
  i64 simulatedEvents = 0;
  i64 period = 0;
  i64 repeatCount = 0;
  i64 warmupEvents = 0;
  i64 foldPeriodChunks = 0;

  bool operator==(const JournalMeta&) const = default;
};

/// Everything recoverable from a journal file: the committed prefix.
struct JournalContents {
  JournalHeader header;
  bool hasMeta = false;
  JournalMeta meta;
  std::vector<JournalPoint> points;  ///< append order (may repeat a size)
  /// Byte offset just past the last valid Commit record — where a
  /// resuming writer truncates to before appending.
  i64 committedBytes = 0;
  /// Bytes past the last commit that were dropped (torn tail, uncommitted
  /// records, or corruption). 0 for a cleanly closed journal.
  i64 droppedTailBytes = 0;
  i64 commitCount = 0;
};

/// Parse journal bytes (the whole file) into their committed prefix.
/// Tolerates — by truncating at — any torn/corrupt suffix; fails only
/// when no valid committed header exists at all (wrong magic, bad CRC on
/// the first records, version mismatch). Never throws on arbitrary bytes.
Expected<JournalContents> parseJournal(std::string_view bytes);

/// Read and parse a journal file. IoError when the file cannot be read.
Expected<JournalContents> loadJournal(const std::string& path);

/// Append-only journal writer. Create() stages the header through a
/// same-directory temp file and renames it into place (the fd survives
/// the rename, so appends continue on the final path); resumeAt() reopens
/// an existing journal and truncates it back to its committed prefix.
/// All appends are mutex-guarded; commit() fsyncs.
class JournalWriter {
 public:
  JournalWriter(JournalWriter&& o) noexcept;
  JournalWriter& operator=(JournalWriter&&) = delete;
  JournalWriter(const JournalWriter&) = delete;
  ~JournalWriter();  ///< best-effort commit + close

  /// Start a fresh journal at `path` (replacing any previous file only
  /// once the new header is durable). `commitEveryPoints` controls how
  /// many point appends ride between automatic fsync'd commit markers.
  static Expected<JournalWriter> create(const std::string& path,
                                        const JournalHeader& header,
                                        i64 commitEveryPoints = 1);

  /// Continue an existing journal: truncate to `contents.committedBytes`
  /// (discarding any torn tail) and append after it.
  static Expected<JournalWriter> resumeAt(const std::string& path,
                                          const JournalContents& contents,
                                          i64 commitEveryPoints = 1);

  /// Thread-safe appends. Points are auto-committed every
  /// `commitEveryPoints` appends; meta records commit immediately.
  Status appendPoint(const JournalPoint& pt);
  Status appendMeta(const JournalMeta& meta);

  /// Write a commit marker and fsync: everything appended so far becomes
  /// durable. Idempotent when nothing is pending.
  Status commit();

  /// Final commit + close; further appends are an error. Called by the
  /// destructor if not called explicitly (errors then ignored).
  Status close();

  i64 pointsAppended() const;

 private:
  JournalWriter() = default;

  Status appendRecordLocked(std::uint8_t type, const std::string& payload);
  Status commitLocked();

  mutable std::mutex mutex_;
  int fd_ = -1;
  i64 pointsAppended_ = 0;
  i64 pointsSinceCommit_ = 0;
  i64 recordsSinceCommit_ = 0;
  i64 commitEveryPoints_ = 1;
};

}  // namespace dr::support
