#include "support/matrix.h"

#include <algorithm>
#include <cstdlib>

#include "support/contracts.h"

namespace dr::support {

IntMatrix::IntMatrix(int rows, int cols) : rows_(rows), cols_(cols) {
  DR_REQUIRE(rows >= 0 && cols >= 0);
  data_.assign(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
               0);
}

IntMatrix::IntMatrix(std::initializer_list<std::initializer_list<i64>> rows) {
  rows_ = static_cast<int>(rows.size());
  cols_ = rows_ == 0 ? 0 : static_cast<int>(rows.begin()->size());
  data_.reserve(static_cast<std::size_t>(rows_) *
                static_cast<std::size_t>(cols_));
  for (const auto& row : rows) {
    DR_REQUIRE_MSG(static_cast<int>(row.size()) == cols_,
                   "ragged initializer for IntMatrix");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

i64& IntMatrix::at(int r, int c) {
  DR_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(r) * cols_ + c];
}

i64 IntMatrix::at(int r, int c) const {
  DR_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_);
  return data_[static_cast<std::size_t>(r) * cols_ + c];
}

bool IntMatrix::isZero() const noexcept {
  return std::all_of(data_.begin(), data_.end(),
                     [](i64 v) { return v == 0; });
}

IntMatrix IntMatrix::transposed() const {
  IntMatrix t(cols_, rows_);
  for (int r = 0; r < rows_; ++r)
    for (int c = 0; c < cols_; ++c) t.at(c, r) = at(r, c);
  return t;
}

int IntMatrix::rank() const {
  // Bareiss fraction-free elimination: all intermediate values stay integer
  // and divisions are exact, so the rank decision is exact as well. To keep
  // intermediates small for the hand-sized matrices we see (n x 2 coefficient
  // matrices), rows are gcd-reduced after each elimination round.
  IntMatrix m = *this;
  int rank = 0;
  i64 prev = 1;
  for (int col = 0; col < m.cols_ && rank < m.rows_; ++col) {
    // Find a pivot row at or below `rank` with the smallest non-zero |entry|
    // (keeps growth down).
    int pivot = -1;
    for (int r = rank; r < m.rows_; ++r) {
      if (m.at(r, col) == 0) continue;
      if (pivot == -1 ||
          std::llabs(m.at(r, col)) < std::llabs(m.at(pivot, col)))
        pivot = r;
    }
    if (pivot == -1) continue;
    if (pivot != rank)
      for (int c = 0; c < m.cols_; ++c) std::swap(m.at(pivot, c), m.at(rank, c));
    for (int r = rank + 1; r < m.rows_; ++r) {
      for (int c = col + 1; c < m.cols_; ++c) {
        i64 v = checkedSub(checkedMul(m.at(rank, col), m.at(r, c)),
                           checkedMul(m.at(r, col), m.at(rank, c)));
        DR_CHECK(v % prev == 0);  // Bareiss division is exact.
        m.at(r, c) = v / prev;
      }
      m.at(r, col) = 0;
      // gcd-reduce the row: scaling a row does not change rank.
      i64 g = 0;
      for (int c = col + 1; c < m.cols_; ++c) g = gcd(g, m.at(r, c));
      if (g > 1)
        for (int c = col + 1; c < m.cols_; ++c) m.at(r, c) /= g;
    }
    prev = m.at(rank, col);
    // After row reduction the Bareiss denominator bookkeeping is no longer
    // exact across rounds; reset it (still correct for rank, each round is a
    // plain integer cross-multiplication elimination).
    prev = 1;
    ++rank;
  }
  return rank;
}

std::string IntMatrix::str() const {
  std::string s;
  for (int r = 0; r < rows_; ++r) {
    s += "[";
    for (int c = 0; c < cols_; ++c) {
      if (c) s += ", ";
      s += std::to_string(at(r, c));
    }
    s += "]\n";
  }
  return s;
}

}  // namespace dr::support
