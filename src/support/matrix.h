#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "support/intmath.h"

/// \file matrix.h
/// Dense integer matrices with exact rank computation.
///
/// The analytical reuse model (paper Section 5.3) classifies a
/// multi-dimensional affine access by the rank of the n x 2 coefficient
/// matrix B: rank 0 means every iteration touches the same element, rank 1
/// means reuse along a unique dependency direction, rank 2 means every
/// iteration touches a distinct element. Rank must be exact (no floating
/// point), so we use fraction-free Bareiss elimination.

namespace dr::support {

/// Row-major dense matrix of 64-bit integers.
class IntMatrix {
 public:
  /// rows x cols zero matrix.
  IntMatrix(int rows, int cols);

  /// From nested initializer lists; all rows must have equal length.
  IntMatrix(std::initializer_list<std::initializer_list<i64>> rows);

  int rows() const noexcept { return rows_; }
  int cols() const noexcept { return cols_; }

  i64& at(int r, int c);
  i64 at(int r, int c) const;

  /// Exact rank via fraction-free (Bareiss) Gaussian elimination.
  int rank() const;

  /// True if every entry is zero.
  bool isZero() const noexcept;

  IntMatrix transposed() const;

  bool operator==(const IntMatrix& o) const noexcept {
    return rows_ == o.rows_ && cols_ == o.cols_ && data_ == o.data_;
  }

  /// Human-readable multi-line rendering, for diagnostics.
  std::string str() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<i64> data_;
};

}  // namespace dr::support
