#include "support/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "support/budget.h"
#include "support/contracts.h"
#include "support/rng.h"

namespace dr::support {

namespace {

/// True on threads currently executing a parallelFor task: nested sweeps
/// run serially instead of blocking on the (busy) pool.
thread_local bool tlsInsideTask = false;

/// One index sweep. Heap-allocated and shared with the workers so a
/// straggler that wakes late claims from *this* job's exhausted counter
/// instead of racing a successor job's fresh one.
struct Job {
  const std::function<void(i64)>* fn = nullptr;
  i64 size = 0;
  std::atomic<i64> next{0};
  std::atomic<i64> pending{0};
  std::exception_ptr error;  ///< first failure; guarded by the pool mutex
};

/// Persistent worker pool executing one sweep at a time. The submitting
/// thread participates, so even a zero-worker pool makes progress.
class ThreadPool {
 public:
  explicit ThreadPool(int workers) {
    workers_.reserve(static_cast<std::size_t>(workers));
    for (int i = 0; i < workers; ++i)
      workers_.emplace_back([this] { workerLoop(); });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void run(i64 n, const std::function<void(i64)>& fn) {
    auto job = std::make_shared<Job>();
    job->fn = &fn;
    job->size = n;
    job->pending.store(n, std::memory_order_relaxed);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      submitGate_.wait(lock, [this] { return job_ == nullptr; });
      job_ = job;
      ++generation_;
    }
    wake_.notify_all();

    work(*job);  // the caller is a worker too

    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&job] { return job->pending.load() == 0; });
    std::exception_ptr error = job->error;
    job_ = nullptr;
    lock.unlock();
    submitGate_.notify_one();
    if (error) std::rethrow_exception(error);
  }

  static ThreadPool& global() {
    static ThreadPool pool(std::max(0, parallelThreads() - 1));
    return pool;
  }

 private:
  void workerLoop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this, seen] {
          return stopping_ || (job_ != nullptr && generation_ != seen);
        });
        if (stopping_) return;
        seen = generation_;
        job = job_;
      }
      work(*job);
    }
  }

  /// Claims indices until the job's counter is exhausted.
  void work(Job& job) {
    tlsInsideTask = true;
    i64 doneHere = 0;
    for (;;) {
      i64 i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.size) break;
      try {
        (*job.fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!job.error) job.error = std::current_exception();
      }
      ++doneHere;
    }
    tlsInsideTask = false;
    if (doneHere > 0 && job.pending.fetch_sub(doneHere) == doneHere) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::condition_variable submitGate_;
  bool stopping_ = false;
  std::shared_ptr<Job> job_;  ///< guarded by mutex_
  std::uint64_t generation_ = 0;
};

}  // namespace

int parallelThreads() {
  if (const char* env = std::getenv("DR_THREADS")) {
    int n = std::atoi(env);
    if (n >= 1) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallelFor(i64 n, const std::function<void(i64)>& fn, int threads) {
  DR_REQUIRE(n >= 0);
  DR_REQUIRE(static_cast<bool>(fn));
  if (threads <= 0) threads = parallelThreads();
  if (n <= 1 || threads == 1 || tlsInsideTask) {
    for (i64 i = 0; i < n; ++i) fn(i);
    return;
  }
  ThreadPool::global().run(n, fn);
}

void parallelFor(i64 n, const RunBudget* budget,
                 const std::function<void(i64)>& fn, int threads) {
  if (budget == nullptr) {
    parallelFor(n, fn, threads);
    return;
  }
  // Wrap rather than touch the pool: the trip check runs on the claiming
  // thread right before fn, so a budget tripped mid-sweep stops every
  // index that has not started yet while in-flight ones finish normally.
  parallelFor(
      n, [&](i64 i) { if (!budget->tripped()) fn(i); }, threads);
}

std::vector<Status> parallelForIsolated(
    i64 n, const IsolatedOptions& opts,
    const std::function<Status(i64, int)>& fn, int threads) {
  DR_REQUIRE(n >= 0);
  DR_REQUIRE(opts.maxAttempts >= 1);
  DR_REQUIRE(static_cast<bool>(fn));
  std::vector<Status> results(static_cast<std::size_t>(n));
  // Each task writes only its own slot, so the result vector is as
  // deterministic as the tasks themselves; the plain parallelFor carries
  // no exceptions here because every attempt is wrapped below.
  parallelFor(
      n,
      [&](i64 i) {
        Status& slot = results[static_cast<std::size_t>(i)];
        if (opts.budget != nullptr && opts.budget->tripped()) {
          slot = opts.budget->toStatus();
          return;
        }
        for (int attempt = 1; attempt <= opts.maxAttempts; ++attempt) {
          try {
            slot = fn(i, attempt);
          } catch (const std::exception& e) {
            slot = Status::error(StatusCode::Internal,
                                 std::string("task threw: ") + e.what());
          } catch (...) {
            slot = Status::error(StatusCode::Internal,
                                 "task threw a non-exception object");
          }
          if (slot.isOk()) return;
          if (attempt == opts.maxAttempts) return;  // exhausted: isolated
          if (opts.budget != nullptr && opts.budget->tripped()) {
            // A tripped budget ends the retry ladder early; the task's
            // own failure stays the recorded outcome.
            return;
          }
          if (opts.backoffBase.count() > 0) {
            Rng rng(mixSeed(opts.seed, static_cast<std::uint64_t>(i),
                            static_cast<std::uint64_t>(attempt)));
            const double scale =
                static_cast<double>(1LL << (attempt - 1)) *
                (1.0 + rng.uniform01());
            std::this_thread::sleep_for(std::chrono::microseconds(
                static_cast<i64>(static_cast<double>(
                                     opts.backoffBase.count()) *
                                 scale)));
          }
        }
      },
      threads);
  return results;
}

}  // namespace dr::support
