#pragma once

#include <chrono>
#include <functional>
#include <vector>

#include "support/intmath.h"
#include "support/status.h"

/// \file parallel.h
/// Minimal deterministic parallelism for the exploration sweeps: a lazily
/// created process-wide thread pool plus a blocking `parallelFor` whose
/// callers write results into per-index slots, so the output is identical
/// to the serial loop regardless of scheduling.
///
/// Thread count: `DR_THREADS` environment variable when set (1 forces the
/// serial path), otherwise std::thread::hardware_concurrency(). Nested
/// parallelFor calls (a task spawning another sweep) degrade to serial
/// execution instead of deadlocking the pool.

namespace dr::support {

class RunBudget;

/// Worker count parallelFor uses by default: DR_THREADS when set (clamped
/// to >= 1), else the hardware concurrency (>= 1).
int parallelThreads();

/// Runs fn(i) for every i in [0, n), blocking until all calls finished.
/// `threads` <= 0 means parallelThreads(). With 1 effective thread (or
/// n <= 1, or when called from inside another parallelFor task) the loop
/// runs serially on the calling thread. The first exception thrown by any
/// fn(i) is rethrown on the caller after the sweep drains; fn must write
/// only to per-index state for the result to be deterministic.
void parallelFor(i64 n, const std::function<void(i64)>& fn, int threads = 0);

/// Budget-aware sweep: indices claimed after `budget` trips are skipped —
/// their output slots keep whatever defaults the caller initialized them
/// to, which the exploration sweeps treat as "not evaluated" (e.g.
/// OrderingResult::simMisses == -1). The sweep still joins fully and
/// still rethrows the first fn exception. Which indices ran before the
/// trip depends on timing; the *content* of every slot that did run stays
/// deterministic. `budget` may be null (plain sweep).
void parallelFor(i64 n, const RunBudget* budget,
                 const std::function<void(i64)>& fn, int threads = 0);

/// Retry/isolation policy for parallelForIsolated.
struct IsolatedOptions {
  /// Total attempts per task (first run + retries). >= 1.
  int maxAttempts = 3;
  /// Backoff before retry r (1-based) sleeps
  /// backoffBase * 2^(r-1) * (1 + jitter), jitter in [0, 1) drawn from
  /// Rng(mixSeed(seed, index, r)) — deterministic per (task, attempt)
  /// regardless of thread scheduling. Zero (the default) never sleeps.
  std::chrono::microseconds backoffBase{0};
  std::uint64_t seed = 0;  ///< jitter stream seed
  /// Optional budget: tasks claimed after a trip are not attempted (their
  /// slot records the budget's Status), and a tripped budget stops
  /// further retries of a failing task.
  const RunBudget* budget = nullptr;
};

/// Fault-isolated sweep: runs fn(i, attempt) for every i in [0, n), where
/// a task that returns a failed Status — or throws — is retried up to
/// `maxAttempts` times with deterministic backoff, and a task that
/// exhausts its retries poisons only its own result slot, never the
/// sweep: the returned vector holds every task's final Status (Ok on any
/// successful attempt), in index order. Exceptions are captured as
/// StatusCode::Internal. This call itself never throws on task failure;
/// callers mark failed indices in their own per-index output (e.g.
/// Fidelity::Failed journal/report points) and carry on.
std::vector<Status> parallelForIsolated(
    i64 n, const IsolatedOptions& opts,
    const std::function<Status(i64 index, int attempt)>& fn,
    int threads = 0);

}  // namespace dr::support
