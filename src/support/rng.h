#pragma once

#include <cstdint>

#include "support/contracts.h"

/// \file rng.h
/// Small deterministic RNG (SplitMix64) for property tests and synthetic
/// workload generation. Deterministic across platforms so test sweeps and
/// generated frames are reproducible.

namespace dr::support {

/// Deterministic seed for a (stream, task, attempt) triple: SplitMix64's
/// finalizer over the combined words. Retry backoff jitter and journal
/// replay draw from Rng(mixSeed(seed, task, attempt)), so reruns and
/// resumed sweeps see identical schedules regardless of which thread
/// happens to execute which task.
constexpr std::uint64_t mixSeed(std::uint64_t seed, std::uint64_t a,
                                std::uint64_t b = 0) noexcept {
  std::uint64_t z = seed;
  z += 0x9e3779b97f4a7c15ULL * (a + 1);
  z += 0x94d049bb133111ebULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// SplitMix64 generator; passes BigCrush for this use, trivially seedable.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi) {
    DR_REQUIRE(lo <= hi);
    std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next());  // full range
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

}  // namespace dr::support
