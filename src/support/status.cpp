#include "support/status.h"

namespace dr::support {

const char* statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::Ok: return "ok";
    case StatusCode::InvalidInput: return "invalid input";
    case StatusCode::IoError: return "I/O error";
    case StatusCode::Overflow: return "overflow";
    case StatusCode::BudgetExceeded: return "budget exceeded";
    case StatusCode::Cancelled: return "cancelled";
    case StatusCode::Internal: return "internal error";
    case StatusCode::Unavailable: return "unavailable";
  }
  return "?";
}

std::string Status::str() const {
  if (isOk()) return "ok";
  std::string out = statusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  for (const Diagnostic& d : diagnostics_) {
    out += "\n  ";
    out += d.str();
  }
  return out;
}

}  // namespace dr::support
