#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "support/contracts.h"

/// \file status.h
/// Structured error surface for *user-input* failures: malformed kernel
/// files, bad CLI options, I/O errors, over-budget runs. Contracts
/// (contracts.h) stay reserved for library misuse — a ContractViolation
/// is a bug in the caller; a non-OK Status is a condition the user can
/// fix. The frontend, the CLI and the explorer facade expose
/// Status/Expected-returning entry points alongside the throwing ones;
/// the throwing ones are thin wrappers (see frontend/frontend.h).

namespace dr::support {

/// Broad failure category; `Ok` means success.
enum class StatusCode {
  Ok,
  InvalidInput,    ///< malformed source / options (user-fixable)
  IoError,         ///< file system failure (open/write/rename)
  Overflow,        ///< arithmetic left the exactly-representable range
  BudgetExceeded,  ///< a RunBudget limit tripped (see budget.h)
  Cancelled,       ///< cooperative cancellation was requested
  Internal,        ///< an invariant failed while serving user input
  Unavailable,     ///< service overloaded / circuit open — retry later
};

/// Human-readable code name ("invalid input", ...).
const char* statusCodeName(StatusCode code);

/// One source-located problem. `location` is free-form ("7:12",
/// "kernel.krn:7:12", a file path); empty when the problem has no
/// position.
struct Diagnostic {
  std::string location;
  std::string message;

  /// "7:12: message" (or just the message without a location).
  std::string str() const {
    return location.empty() ? message : location + ": " + message;
  }

  bool operator==(const Diagnostic&) const = default;
};

/// Success-or-failure result: a code, a summary message, and zero or more
/// source-located diagnostics (the parser reports every error it could
/// recover past, not just the first).
class Status {
 public:
  Status() = default;  ///< Ok

  static Status ok() { return Status(); }

  static Status error(StatusCode code, std::string message) {
    DR_REQUIRE(code != StatusCode::Ok);
    Status s;
    s.code_ = code;
    s.message_ = std::move(message);
    return s;
  }

  static Status error(StatusCode code, std::string message,
                      std::vector<Diagnostic> diagnostics) {
    Status s = error(code, std::move(message));
    s.diagnostics_ = std::move(diagnostics);
    return s;
  }

  bool isOk() const noexcept { return code_ == StatusCode::Ok; }
  StatusCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }
  const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diagnostics_;
  }

  void addDiagnostic(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

  /// One line per problem: "code: message" followed by each diagnostic.
  std::string str() const;

 private:
  StatusCode code_ = StatusCode::Ok;
  std::string message_;
  std::vector<Diagnostic> diagnostics_;
};

/// A value or the Status explaining why there is none.
template <class T>
class Expected {
 public:
  Expected(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Expected(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DR_REQUIRE_MSG(!status_.isOk(),
                   "Expected needs a value or a non-OK status");
  }

  bool hasValue() const noexcept { return value_.has_value(); }
  explicit operator bool() const noexcept { return hasValue(); }

  /// Ok when a value is present.
  const Status& status() const noexcept { return status_; }

  /// Precondition: hasValue().
  T& value() {
    DR_REQUIRE_MSG(hasValue(), "Expected holds no value: " + status_.str());
    return *value_;
  }
  const T& value() const {
    DR_REQUIRE_MSG(hasValue(), "Expected holds no value: " + status_.str());
    return *value_;
  }

  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace dr::support
