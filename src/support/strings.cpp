#include "support/strings.h"

#include <cctype>
#include <cmath>
#include <cstdio>

#include "support/contracts.h"

namespace dr::support {

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string fmtDouble(double v, int digits) {
  DR_REQUIRE(digits >= 0 && digits <= 17);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string indent(std::string_view body, int spaces) {
  DR_REQUIRE(spaces >= 0);
  std::string pad(static_cast<std::size_t>(spaces), ' ');
  std::string out;
  std::size_t start = 0;
  while (start <= body.size()) {
    std::size_t nl = body.find('\n', start);
    std::string_view line = body.substr(
        start, nl == std::string_view::npos ? body.size() - start : nl - start);
    if (!line.empty()) out += pad;
    out += line;
    if (nl == std::string_view::npos) break;
    out += '\n';
    start = nl + 1;
  }
  return out;
}

}  // namespace dr::support
