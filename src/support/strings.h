#pragma once

#include <string>
#include <string_view>
#include <vector>

/// \file strings.h
/// String utilities shared by the frontend, code generator and report
/// printers.

namespace dr::support {

/// Join the elements of `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading and trailing whitespace.
std::string_view trim(std::string_view s);

/// Split on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Fixed-point decimal rendering with `digits` fractional digits.
std::string fmtDouble(double v, int digits = 3);

/// Indent every line of `body` by `spaces` spaces.
std::string indent(std::string_view body, int spaces);

}  // namespace dr::support
