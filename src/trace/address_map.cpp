#include "trace/address_map.h"

#include <algorithm>
#include <unordered_map>

#include "support/contracts.h"

namespace dr::trace {

DenseTrace densify(const std::vector<i64>& addresses) {
  DenseTrace out;
  const std::size_t n = addresses.size();
  out.ids.resize(n);
  if (n == 0) return out;

  auto [lo, hi] = std::minmax_element(addresses.begin(), addresses.end());
  const i64 minAddr = *lo;
  const i64 extent = *hi - minAddr + 1;  // >= 1; no overflow for map addrs

  // Flat path: one table slot per address in [min, max]. Worth it while
  // the range stays within a few times the stream length.
  if (extent > 0 && extent <= static_cast<i64>(n) * 8 + 1024) {
    std::vector<i64> table(static_cast<std::size_t>(extent), -1);
    for (std::size_t t = 0; t < n; ++t) {
      i64& id = table[static_cast<std::size_t>(addresses[t] - minAddr)];
      if (id < 0) {
        id = static_cast<i64>(out.idToAddress.size());
        out.idToAddress.push_back(addresses[t]);
      }
      out.ids[t] = id;
    }
    return out;
  }

  std::unordered_map<i64, i64> table;
  table.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    auto [it, inserted] =
        table.emplace(addresses[t], static_cast<i64>(out.idToAddress.size()));
    if (inserted) out.idToAddress.push_back(addresses[t]);
    out.ids[t] = it->second;
  }
  return out;
}

using dr::support::checkedAdd;
using dr::support::checkedMul;
using loopir::AffineExpr;
using loopir::ArrayAccess;
using loopir::Loop;
using loopir::LoopNest;

ValueRange affineRange(const AffineExpr& expr, const LoopNest& nest) {
  i64 lo = expr.constantTerm();
  i64 hi = expr.constantTerm();
  for (int d = 0; d < nest.depth(); ++d) {
    i64 k = expr.coeff(d);
    if (k == 0) continue;
    const Loop& loop = nest.loops[static_cast<std::size_t>(d)];
    DR_REQUIRE_MSG(loop.tripCount() >= 1, "empty loop in affineRange");
    i64 first = loop.begin;
    i64 last = loop.valueAt(loop.tripCount() - 1);
    i64 vmin = std::min(first, last);
    i64 vmax = std::max(first, last);
    if (k > 0) {
      lo = checkedAdd(lo, checkedMul(k, vmin));
      hi = checkedAdd(hi, checkedMul(k, vmax));
    } else {
      lo = checkedAdd(lo, checkedMul(k, vmax));
      hi = checkedAdd(hi, checkedMul(k, vmin));
    }
  }
  return ValueRange{lo, hi};
}

AddressMap::AddressMap(const Program& p) {
  signals_.resize(p.signals.size());
  // Start from the declared extents so untouched signals still linearize.
  for (std::size_t s = 0; s < p.signals.size(); ++s) {
    auto& per = signals_[s];
    per.range.reserve(p.signals[s].dims.size());
    for (i64 d : p.signals[s].dims) per.range.push_back(ValueRange{0, d - 1});
  }
  // Widen by every access's exact affine range.
  for (const LoopNest& nest : p.nests) {
    for (const ArrayAccess& acc : nest.body) {
      auto& per = signals_[static_cast<std::size_t>(acc.signal)];
      DR_CHECK(acc.indices.size() == per.range.size());
      for (std::size_t d = 0; d < acc.indices.size(); ++d) {
        ValueRange r = affineRange(acc.indices[d], nest);
        per.range[d].min = std::min(per.range[d].min, r.min);
        per.range[d].max = std::max(per.range[d].max, r.max);
      }
    }
  }
  // Row-major strides over padded extents; disjoint bases per signal.
  i64 nextBase = 0;
  for (auto& per : signals_) {
    per.stride.assign(per.range.size(), 1);
    for (int d = static_cast<int>(per.range.size()) - 2; d >= 0; --d)
      per.stride[static_cast<std::size_t>(d)] =
          checkedMul(per.stride[static_cast<std::size_t>(d) + 1],
                     per.range[static_cast<std::size_t>(d) + 1].extent());
    per.size = per.range.empty()
                   ? 0
                   : checkedMul(per.stride[0], per.range[0].extent());
    per.base = nextBase;
    nextBase = checkedAdd(nextBase, per.size);
  }
}

i64 AddressMap::address(int signal, const std::vector<i64>& index) const {
  DR_REQUIRE(signal >= 0 && signal < static_cast<int>(signals_.size()));
  const PerSignal& per = signals_[static_cast<std::size_t>(signal)];
  DR_REQUIRE(index.size() == per.range.size());
  i64 addr = per.base;
  for (std::size_t d = 0; d < index.size(); ++d) {
    DR_REQUIRE_MSG(index[d] >= per.range[d].min && index[d] <= per.range[d].max,
                   "index outside the padded range");
    addr += (index[d] - per.range[d].min) * per.stride[d];
  }
  return addr;
}

const std::vector<ValueRange>& AddressMap::paddedRange(int signal) const {
  DR_REQUIRE(signal >= 0 && signal < static_cast<int>(signals_.size()));
  return signals_[static_cast<std::size_t>(signal)].range;
}

i64 AddressMap::paddedElementCount(int signal) const {
  DR_REQUIRE(signal >= 0 && signal < static_cast<int>(signals_.size()));
  return signals_[static_cast<std::size_t>(signal)].size;
}

i64 AddressMap::base(int signal) const {
  DR_REQUIRE(signal >= 0 && signal < static_cast<int>(signals_.size()));
  return signals_[static_cast<std::size_t>(signal)].base;
}

int AddressMap::signalOf(i64 address) const {
  for (std::size_t s = 0; s < signals_.size(); ++s)
    if (address >= signals_[s].base &&
        address < signals_[s].base + signals_[s].size)
      return static_cast<int>(s);
  return -1;
}

}  // namespace dr::trace
