#pragma once

#include <vector>

#include "loopir/program.h"

/// \file address_map.h
/// Injective mapping from (signal, multi-dimensional index) to a flat
/// 64-bit address, shared by all trace consumers.
///
/// Kernels like motion estimation read a halo around the declared frame
/// (Old[n*i1+i3+i5] with i3 in [-m, m-1] runs below 0 and above H-1).
/// Linearizing with the *declared* extents would alias distinct elements
/// (row r, column W+5 collides with row r+1, column 5), so the map first
/// computes, per signal and dimension, the exact min/max index value any
/// access in the program can produce (exact for affine expressions over
/// rectangular nests) and linearizes with those padded extents.

namespace dr::trace {

using loopir::i64;
using loopir::Program;

/// A sparse address stream compacted to contiguous ids: ids[t] is the
/// dense id (in [0, distinct()), numbered by first appearance) of the
/// t-th access. Simulators index flat vectors with these ids instead of
/// hashing 64-bit addresses on every access; idToAddress inverts the map.
struct DenseTrace {
  std::vector<i64> ids;
  std::vector<i64> idToAddress;

  i64 length() const { return static_cast<i64>(ids.size()); }
  i64 distinct() const { return static_cast<i64>(idToAddress.size()); }
};

/// Compact `addresses` to dense ids in one pass. Uses a flat lookup table
/// when the address range is close to the stream length (always true for
/// AddressMap-produced traces, whose addresses are contiguous per signal),
/// falling back to hashing for pathologically sparse streams.
DenseTrace densify(const std::vector<i64>& addresses);

/// Exact value range of an affine expression over one nest's iteration box.
struct ValueRange {
  i64 min = 0;
  i64 max = 0;

  i64 extent() const { return max - min + 1; }
};

/// Range of `expr` over all iterations of `nest`. Precondition: every loop
/// in `nest` has tripCount() >= 1.
ValueRange affineRange(const loopir::AffineExpr& expr,
                       const loopir::LoopNest& nest);

class AddressMap {
 public:
  /// Analyses all accesses in `p` to size the padded index space.
  explicit AddressMap(const Program& p);

  /// Flat address of one element. Precondition: `index` is inside the
  /// padded range computed at construction.
  i64 address(int signal, const std::vector<i64>& index) const;

  /// Padded extents of `signal` (declared extents widened by halo use).
  const std::vector<ValueRange>& paddedRange(int signal) const;

  /// Number of addressable elements of `signal` in the padded space
  /// (an upper bound on the distinct elements the program can touch).
  i64 paddedElementCount(int signal) const;

  /// First address assigned to `signal`; signals occupy disjoint ranges.
  i64 base(int signal) const;

  /// Signal that owns `address`, or -1 when out of every range.
  int signalOf(i64 address) const;

 private:
  struct PerSignal {
    std::vector<ValueRange> range;  ///< per dimension
    std::vector<i64> stride;        ///< row-major over padded extents
    i64 base = 0;
    i64 size = 0;
  };
  std::vector<PerSignal> signals_;
};

}  // namespace dr::trace
