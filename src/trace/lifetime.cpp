#include "trace/lifetime.h"

#include <algorithm>
#include <unordered_map>

namespace dr::trace {

namespace {

struct Span {
  i64 first = 0;
  i64 last = 0;
};

std::unordered_map<i64, Span> spans(const Trace& trace) {
  std::unordered_map<i64, Span> out;
  out.reserve(trace.addresses.size() / 4 + 1);
  for (i64 t = 0; t < trace.length(); ++t) {
    i64 addr = trace.addresses[static_cast<std::size_t>(t)];
    auto [it, inserted] = out.try_emplace(addr, Span{t, t});
    if (!inserted) it->second.last = t;
  }
  return out;
}

}  // namespace

std::vector<i64> liveProfile(const Trace& trace) {
  std::unordered_map<i64, Span> sp = spans(trace);
  // +1 at first access, -1 just after last access.
  std::vector<i64> delta(static_cast<std::size_t>(trace.length()) + 1, 0);
  for (const auto& [addr, s] : sp) {
    ++delta[static_cast<std::size_t>(s.first)];
    --delta[static_cast<std::size_t>(s.last) + 1];
  }
  std::vector<i64> live(static_cast<std::size_t>(trace.length()));
  i64 cur = 0;
  for (i64 t = 0; t < trace.length(); ++t) {
    cur += delta[static_cast<std::size_t>(t)];
    live[static_cast<std::size_t>(t)] = cur;
  }
  return live;
}

LifetimeStats analyzeLifetimes(const Trace& trace) {
  LifetimeStats stats;
  std::unordered_map<i64, Span> sp = spans(trace);
  stats.distinctElements = static_cast<i64>(sp.size());
  for (const auto& [addr, s] : sp)
    stats.maxLifetime = std::max(stats.maxLifetime, s.last - s.first + 1);

  std::vector<i64> live = liveProfile(trace);
  double sum = 0.0;
  for (i64 v : live) {
    stats.maxLive = std::max(stats.maxLive, v);
    sum += static_cast<double>(v);
  }
  if (!live.empty()) stats.avgLive = sum / static_cast<double>(live.size());
  return stats;
}

}  // namespace dr::trace
