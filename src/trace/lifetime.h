#pragma once

#include <vector>

#include "trace/walker.h"

/// \file lifetime.h
/// Element lifetime analysis over an access trace. An element is live from
/// its first to its last access; the maximum number of simultaneously live
/// elements is the storage a fully associative buffer needs to never evict
/// live data. This is the trace-level equivalent of the system-level size
/// estimation the paper cites for bounding copy-candidate sizes ([12],
/// Section 4: "more realistic upper and lower bounds on sizes ... can be
/// produced by a system-level memory size estimation tool").

namespace dr::trace {

struct LifetimeStats {
  i64 distinctElements = 0;
  i64 maxLive = 0;        ///< peak number of simultaneously live elements
  double avgLive = 0.0;   ///< time-averaged live count
  i64 maxLifetime = 0;    ///< longest first-to-last span (in accesses)
};

/// Computes lifetime statistics of `trace` (every address live from its
/// first to its last occurrence, inclusive).
LifetimeStats analyzeLifetimes(const Trace& trace);

/// Live-element count just after each access (size trace.length()).
std::vector<i64> liveProfile(const Trace& trace);

}  // namespace dr::trace
