#include "trace/period.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_set>

#include "support/intmath.h"

namespace dr::trace {

using dr::support::checkedAdd;
using dr::support::checkedMul;

namespace {

/// Membership set over one chunk's addresses: flat byte table when the
/// address extent is manageable, hashing otherwise.
class ChunkSet {
 public:
  ChunkSet(i64 lo, i64 hi, i64 expected) : lo_(lo), hi_(hi) {
    const i64 extent = hi - lo + 1;
    if (extent > 0 && extent <= std::max<i64>(expected * 16, i64{1} << 20) &&
        extent <= (i64{1} << 26)) {
      flat_.assign(static_cast<std::size_t>(extent), 0);
    } else {
      hash_.reserve(static_cast<std::size_t>(expected));
    }
  }

  /// Returns true when newly inserted.
  bool insert(i64 x) {
    if (!flat_.empty()) {
      std::uint8_t& slot = flat_[static_cast<std::size_t>(x - lo_)];
      if (slot) return false;
      slot = 1;
      return true;
    }
    return hash_.insert(x).second;
  }

  bool contains(i64 x) const {
    if (x < lo_ || x > hi_) return false;
    if (!flat_.empty())
      return flat_[static_cast<std::size_t>(x - lo_)] != 0;
    return hash_.count(x) != 0;
  }

 private:
  i64 lo_, hi_;
  std::vector<std::uint8_t> flat_;
  std::unordered_set<i64> hash_;
};

/// The inner sub-nest spanned by levels (level, depth) with the outer
/// levels pinned at their begin values — chunk 0 of the folded stream.
LoweredNest chunkNest(const LoweredNest& nest, int level) {
  LoweredNest sub;
  for (int d = level + 1; d < nest.depth(); ++d)
    sub.loops.push_back(nest.loops[static_cast<std::size_t>(d)]);
  for (const LoweredAccess& acc : nest.accesses) {
    LoweredAccess a;
    a.isWrite = acc.isWrite;
    a.nest = acc.nest;
    a.accessIndex = acc.accessIndex;
    a.base = acc.base;
    for (int d = 0; d <= level; ++d)
      a.base += acc.levelCoeff[static_cast<std::size_t>(d)] *
                nest.loops[static_cast<std::size_t>(d)].begin;
    for (int d = level + 1; d < nest.depth(); ++d)
      a.levelCoeff.push_back(acc.levelCoeff[static_cast<std::size_t>(d)]);
    sub.accesses.push_back(std::move(a));
  }
  return sub;
}

/// Largest g >= 1 such that some chunk-0 address first recurs g chunks
/// later (addr + g*shift inside chunk 0's footprint while addr + g'*shift
/// is not for 1 <= g' < g). 1 when shift == 0 (chunks identical) or every
/// recurrence is immediate. Returns -1 when the scan exceeds its probe
/// budget (caller treats the stream as non-foldable).
i64 maxLateWarmGap(const LoweredNest& nest, int level, i64 shift,
                   i64 repeatCount) {
  if (shift == 0) return 1;
  const LoweredNest sub = chunkNest(nest, level);
  auto [lo, hi] = sub.addressRange();
  ChunkSet set(lo, hi, sub.events());
  std::vector<i64> distinct;
  distinct.reserve(static_cast<std::size_t>(std::min<i64>(
      sub.events(), hi - lo + 1)));
  walkNest(sub, [&](const AccessEvent& ev) {
    if (set.insert(ev.address)) distinct.push_back(ev.address);
  });

  const i64 extent = hi - lo;
  const i64 absShift = shift > 0 ? shift : -shift;
  const i64 gRange = extent / absShift;  // beyond this, out of footprint
  const i64 gCap = std::min<i64>(repeatCount - 1, gRange);
  i64 budget = i64{1} << 26;  // probes; exceeded => give up, not mis-fold
  i64 maxGap = 1;
  for (i64 x : distinct) {
    for (i64 g = 1; g <= gCap; ++g) {
      if (--budget < 0) return -1;
      // g <= extent/|shift| keeps g*shift within the footprint extent, so
      // x + g*shift stays in [2*lo - hi, 2*hi - lo]: no overflow possible
      // once the address range itself is representable.
      if (set.contains(x + g * shift)) {
        maxGap = std::max(maxGap, g);
        break;
      }
    }
  }
  return maxGap;
}

}  // namespace

PeriodInfo detectPeriod(const std::vector<LoweredNest>& nests) {
  PeriodInfo info;
  if (nests.size() != 1) return info;  // multi-nest streams: no global period
  const LoweredNest& nest = nests.front();
  const int depth = nest.depth();
  const i64 accessCount = static_cast<i64>(nest.accesses.size());
  if (accessCount == 0 || nest.iterations() <= 0) return info;

  // Deepest level first: smallest period, maximal folding.
  // Checked products throughout: at 8K-video scale (7680x4320 frames)
  // trip-count and coefficient products approach the i64 range, and a
  // silent wrap here would mis-fold the stream rather than fail loudly.
  for (int l = depth - 1; l >= 0; --l) {
    i64 repeat = 1, period = accessCount;
    for (int j = 0; j <= l; ++j)
      repeat = checkedMul(repeat, nest.loops[static_cast<std::size_t>(j)].trip);
    for (int j = l + 1; j < depth; ++j)
      period = checkedMul(period, nest.loops[static_cast<std::size_t>(j)].trip);
    if (repeat < 2) continue;

    // Deepest non-degenerate level in [0, l] sets the shift (its digit has
    // weight 1 in the flattened chunk counter).
    int anchor = -1;
    for (int j = l; j >= 0; --j)
      if (nest.loops[static_cast<std::size_t>(j)].trip > 1) {
        anchor = j;
        break;
      }
    DR_CHECK(anchor >= 0);  // repeat >= 2 implies a non-degenerate level

    bool valid = true;
    i64 shift = 0;
    for (std::size_t a = 0; a < nest.accesses.size() && valid; ++a) {
      const LoweredAccess& acc = nest.accesses[a];
      const i64 accShift =
          checkedMul(acc.levelCoeff[static_cast<std::size_t>(anchor)],
                     nest.loops[static_cast<std::size_t>(anchor)].step);
      if (a == 0)
        shift = accShift;
      else if (accShift != shift)
        valid = false;
      // Every outer non-degenerate level must continue the same linear
      // ramp: coeff[j]*step[j] == shift * prod of trips below it.
      i64 weight = 1;
      for (int j = l; j >= 0 && valid; --j) {
        const LoweredLoop& loop = nest.loops[static_cast<std::size_t>(j)];
        if (loop.trip > 1 &&
            checkedMul(acc.levelCoeff[static_cast<std::size_t>(j)],
                       loop.step) != checkedMul(shift, weight))
          valid = false;
        weight = checkedMul(weight, loop.trip);
      }
    }
    if (!valid) continue;

    const i64 gap = maxLateWarmGap(nest, l, shift, repeat);
    if (gap < 0) continue;  // probe budget blown: treat as non-foldable

    info.found = true;
    info.level = l;
    info.period = period;
    info.repeatCount = repeat;
    info.shift = shift;
    info.maxLateWarmGap = gap;
    info.warmup = checkedMul(checkedAdd(1, gap), period);
    info.totalEvents = checkedMul(repeat, period);
    return info;
  }
  return info;
}

PeriodInfo detectPeriod(const Program& p, const AddressMap& map,
                        const TraceFilter& filter) {
  return detectPeriod(lowerProgram(p, map, filter));
}

}  // namespace dr::trace
