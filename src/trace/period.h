#pragma once

#include "trace/stream.h"

/// \file period.h
/// Steady-state periodicity detection for affine access streams — the
/// compile-time half of the ISSUE-2 folding pipeline.
///
/// A filtered single-nest trace is a sequence of *chunks*: one chunk per
/// iteration of some loop level `level`, each chunk replaying the inner
/// levels in full. Because every address is affine in the iterators,
/// chunk c+1 is a shifted copy of chunk c (addr[t + period] =
/// addr[t] + shift for *all* t) exactly when the flattened outer
/// iteration counter enters the address function linearly:
///
///   coeff[j] * step[j] == shift * prod_{j < j' <= level} trip[j']
///       for every access and every outer level j <= level (trip > 1),
///
/// with shift = coeff[level] * step[level] shared by all accesses. Under
/// that condition the same-address relation is invariant under t -> t +
/// period, so reuse distances — and therefore the whole Mattson/OPT
/// stack-distance histogram — reach a steady state after a short warmup,
/// and per-capacity miss counts for the full trace follow from one
/// simulated period plus extrapolation (simcore/folded_curve.h).
///
/// detectPeriod picks the *deepest* valid level (smallest period = most
/// folding); the levels above it collapse into repeatCount. The warmup
/// accounts for "late warming": with shift != 0, an address first touched
/// in chunk 0 can next recur g > 1 chunks later (addr + g*shift lands in
/// chunk 0's footprint while addr + shift does not), so steady state only
/// starts after maxLateWarmGap chunks. The gap scan materializes one
/// chunk's address set — O(period) memory, the same bound the folded
/// simulation itself needs.

namespace dr::trace {

struct PeriodInfo {
  bool found = false;
  int level = -1;       ///< loop level one chunk iterates (0 = outermost)
  i64 period = 0;       ///< access events per chunk
  i64 repeatCount = 0;  ///< chunks in the full stream (= trips 0..level)
  i64 shift = 0;        ///< address delta between consecutive chunks
  /// Events to simulate before per-chunk histogram increments are steady:
  /// (1 + maxLateWarmGap) * period. Always >= period when found.
  i64 warmup = 0;
  i64 maxLateWarmGap = 1;  ///< largest g with chunk-0 reuse across g chunks
  i64 totalEvents = 0;     ///< repeatCount * period
};

/// Detect shift-periodicity of the filtered access stream. Requires the
/// stream to come from exactly one nest (multi-nest programs like SUSAN
/// fall back to plain streaming); returns found = false otherwise or when
/// no level yields repeatCount >= 2.
PeriodInfo detectPeriod(const Program& p, const AddressMap& map,
                        const TraceFilter& filter);

/// As above on an already-lowered program (reuse across analyses).
PeriodInfo detectPeriod(const std::vector<LoweredNest>& nests);

}  // namespace dr::trace
