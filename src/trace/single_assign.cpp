#include "trace/single_assign.h"

#include <unordered_map>

#include "trace/walker.h"

namespace dr::trace {

std::vector<SingleAssignmentViolation> checkSingleAssignment(
    const Program& p, const AddressMap& map) {
  std::unordered_map<i64, i64> writeCount;
  TraceFilter f;
  f.includeReads = false;
  f.includeWrites = true;
  walk(p, map, f, [&writeCount](const AccessEvent& ev) {
    ++writeCount[ev.address];
  });

  std::vector<SingleAssignmentViolation> out;
  for (const auto& [addr, count] : writeCount) {
    if (count <= 1) continue;
    SingleAssignmentViolation v;
    v.signal = map.signalOf(addr);
    v.address = addr;
    v.writeCount = count;
    out.push_back(v);
  }
  return out;
}

std::string describeViolations(
    const Program& p, const std::vector<SingleAssignmentViolation>& v) {
  std::string s;
  for (const auto& viol : v) {
    std::string sigName = viol.signal >= 0
                              ? p.signals[static_cast<std::size_t>(viol.signal)].name
                              : "?";
    s += "signal '" + sigName + "' element at flat address " +
         std::to_string(viol.address) + " written " +
         std::to_string(viol.writeCount) + " times\n";
  }
  return s;
}

}  // namespace dr::trace
