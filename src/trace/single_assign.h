#pragma once

#include <string>
#include <vector>

#include "trace/address_map.h"

/// \file single_assign.h
/// DTSE pre-processing check (paper Section 3, step 1): "we assume the code
/// has been pre-processed to single assignment code, where every array
/// value can only be written once but read several times". We verify the
/// property dynamically over the full write trace.

namespace dr::trace {

struct SingleAssignmentViolation {
  int signal = -1;
  i64 address = 0;
  i64 writeCount = 0;
};

/// All elements written more than once; empty means single-assignment.
std::vector<SingleAssignmentViolation> checkSingleAssignment(
    const Program& p, const AddressMap& map);

/// Human-readable report of the violations (empty string when clean).
std::string describeViolations(
    const Program& p, const std::vector<SingleAssignmentViolation>& v);

}  // namespace dr::trace
