#include "trace/stats.h"

#include <unordered_set>

#include "trace/walker.h"

#include "support/contracts.h"

namespace dr::trace {

std::vector<SignalStats> signalStats(const Program& p, const AddressMap& map) {
  std::vector<SignalStats> out(p.signals.size());
  std::vector<std::unordered_set<i64>> readSets(p.signals.size());
  std::vector<std::unordered_set<i64>> writeSets(p.signals.size());
  for (std::size_t s = 0; s < out.size(); ++s)
    out[s].signal = static_cast<int>(s);

  TraceFilter f;
  f.includeReads = true;
  f.includeWrites = true;
  walk(p, map, f, [&](const AccessEvent& ev) {
    int s = map.signalOf(ev.address);
    DR_CHECK(s >= 0);
    auto us = static_cast<std::size_t>(s);
    if (ev.isWrite) {
      ++out[us].writes;
      writeSets[us].insert(ev.address);
    } else {
      ++out[us].reads;
      readSets[us].insert(ev.address);
    }
  });

  for (std::size_t s = 0; s < out.size(); ++s) {
    out[s].distinctRead = static_cast<i64>(readSets[s].size());
    out[s].distinctWritten = static_cast<i64>(writeSets[s].size());
  }
  return out;
}

}  // namespace dr::trace
