#pragma once

#include <vector>

#include "trace/address_map.h"

/// \file stats.h
/// Per-signal access totals. C_tot — "the total number of reads from the
/// signal in the lowest level in the hierarchy" (paper eq. (1)) — comes
/// from here for trace-based analyses.

namespace dr::trace {

struct SignalStats {
  int signal = -1;
  i64 reads = 0;
  i64 writes = 0;
  i64 distinctRead = 0;     ///< distinct elements read at least once
  i64 distinctWritten = 0;  ///< distinct elements written at least once
};

/// Statistics for every signal in the program.
std::vector<SignalStats> signalStats(const Program& p, const AddressMap& map);

}  // namespace dr::trace
