#include "trace/stream.h"

#include <algorithm>
#include <limits>

namespace dr::trace {

using loopir::ArrayAccess;
using loopir::LoopNest;

i64 LoweredNest::iterations() const {
  i64 n = 1;
  for (const LoweredLoop& l : loops) n *= l.trip;
  return n;
}

i64 LoweredNest::events() const {
  return iterations() * static_cast<i64>(accesses.size());
}

std::pair<i64, i64> LoweredNest::addressRange() const {
  DR_REQUIRE(events() > 0);
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  for (const LoweredAccess& acc : accesses) {
    i64 amin = acc.base, amax = acc.base;
    for (int d = 0; d < depth(); ++d) {
      const LoweredLoop& l = loops[static_cast<std::size_t>(d)];
      const i64 c = acc.levelCoeff[static_cast<std::size_t>(d)];
      const i64 first = c * l.begin;
      const i64 last = c * (l.begin + (l.trip - 1) * l.step);
      amin += std::min(first, last);
      amax += std::max(first, last);
    }
    lo = std::min(lo, amin);
    hi = std::max(hi, amax);
  }
  return {lo, hi};
}

LoweredAccess lowerAccess(const AddressMap& map, const LoopNest& nest,
                          const ArrayAccess& acc, int nestIdx, int accIdx) {
  LoweredAccess out;
  out.isWrite = acc.kind == loopir::AccessKind::Write;
  out.nest = nestIdx;
  out.accessIndex = accIdx;
  out.levelCoeff.assign(static_cast<std::size_t>(nest.depth()), 0);

  // Evaluate the map at the per-dimension minima to find the origin, then
  // add stride-weighted iterator coefficients.
  const std::vector<ValueRange>& range = map.paddedRange(acc.signal);
  std::vector<i64> minIndex;
  minIndex.reserve(range.size());
  for (const ValueRange& r : range) minIndex.push_back(r.min);
  const i64 origin = map.address(acc.signal, minIndex);
  out.base = origin;

  // stride_d = address delta for +1 in dimension d (probed off the
  // pristine origin).
  for (std::size_t d = 0; d < range.size(); ++d) {
    i64 stride = 0;  // degenerate extent: coefficient contributes nothing
    if (range[d].extent() > 1) {
      std::vector<i64> probe = minIndex;
      probe[d] += 1;
      stride = map.address(acc.signal, probe) - origin;
    }
    const loopir::AffineExpr& e = acc.indices[d];
    out.base += (e.constantTerm() - range[d].min) * stride;
    for (int l = 0; l < nest.depth(); ++l)
      out.levelCoeff[static_cast<std::size_t>(l)] += e.coeff(l) * stride;
  }
  return out;
}

std::vector<LoweredNest> lowerProgram(const Program& p, const AddressMap& map,
                                      const TraceFilter& filter) {
  DR_REQUIRE_MSG(filter.nest.has_value() == filter.accessIndex.has_value(),
                 "nest and accessIndex filters must be set together");
  std::vector<LoweredNest> out;
  for (std::size_t n = 0; n < p.nests.size(); ++n) {
    const LoopNest& nest = p.nests[n];
    LoweredNest ln;
    for (const loopir::Loop& l : nest.loops)
      ln.loops.push_back(LoweredLoop{l.begin, l.step, l.tripCount()});
    for (std::size_t a = 0; a < nest.body.size(); ++a)
      if (filter.matches(nest.body[a], static_cast<int>(n),
                         static_cast<int>(a)))
        ln.accesses.push_back(lowerAccess(map, nest, nest.body[a],
                                          static_cast<int>(n),
                                          static_cast<int>(a)));
    if (!ln.accesses.empty() && ln.iterations() > 0)
      out.push_back(std::move(ln));
  }
  return out;
}

TraceCursor::TraceCursor(const Program& p, const AddressMap& map,
                         const TraceFilter& filter)
    : TraceCursor(lowerProgram(p, map, filter)) {}

TraceCursor::TraceCursor(std::vector<LoweredNest> nests)
    : nests_(std::move(nests)) {
  for (const LoweredNest& n : nests_) length_ += n.events();
  reset();
}

void TraceCursor::enterNest(std::size_t n) {
  nestIdx_ = n;
  if (n >= nests_.size()) return;
  const std::size_t depth =
      static_cast<std::size_t>(nests_[n].depth());
  k_.assign(depth, 0);
  iter_.resize(depth);
  for (std::size_t d = 0; d < depth; ++d)
    iter_[d] = nests_[n].loops[d].begin;
}

void TraceCursor::reset() {
  produced_ = 0;
  truncated_ = false;
  enterNest(0);
}

i64 TraceCursor::nextChunk(std::vector<i64>& out, i64 maxEvents) {
  DR_REQUIRE(maxEvents >= 1);
  out.clear();
  if (budget_ != nullptr && !done() && budget_->tripped()) {
    truncated_ = true;
    return 0;
  }
  while (nestIdx_ < nests_.size() &&
         static_cast<i64>(out.size()) < maxEvents) {
    const LoweredNest& nest = nests_[nestIdx_];
    const int depth = nest.depth();
    const std::size_t udepth = static_cast<std::size_t>(depth);
    // Emit iteration points until the budget is met or the nest ends.
    for (;;) {
      for (const LoweredAccess& acc : nest.accesses) {
        i64 addr = acc.base;
        for (std::size_t d = 0; d < udepth; ++d)
          addr += acc.levelCoeff[d] * iter_[d];
        out.push_back(addr);
      }
      int d = depth - 1;
      for (; d >= 0; --d) {
        std::size_t ud = static_cast<std::size_t>(d);
        if (++k_[ud] < nest.loops[ud].trip) {
          iter_[ud] += nest.loops[ud].step;
          break;
        }
        k_[ud] = 0;
        iter_[ud] = nest.loops[ud].begin;
      }
      if (d < 0) {
        enterNest(nestIdx_ + 1);
        break;
      }
      if (static_cast<i64>(out.size()) >= maxEvents) break;
    }
  }
  produced_ += static_cast<i64>(out.size());
  if (budget_ != nullptr) budget_->chargeEvents(static_cast<i64>(out.size()));
  DR_ENSURE(produced_ <= length_);
  return static_cast<i64>(out.size());
}

std::pair<i64, i64> TraceCursor::addressRange() const {
  if (length_ == 0) return {0, -1};
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  for (const LoweredNest& n : nests_) {
    auto [nlo, nhi] = n.addressRange();
    lo = std::min(lo, nlo);
    hi = std::max(hi, nhi);
  }
  return {lo, hi};
}

}  // namespace dr::trace
