#include "trace/stream.h"

#include <algorithm>
#include <limits>

namespace dr::trace {

using loopir::ArrayAccess;
using loopir::LoopNest;

i64 LoweredNest::iterations() const {
  i64 n = 1;
  for (const LoweredLoop& l : loops) n *= l.trip;
  return n;
}

i64 LoweredNest::events() const {
  return iterations() * static_cast<i64>(accesses.size());
}

std::pair<i64, i64> LoweredNest::addressRange() const {
  DR_REQUIRE(events() > 0);
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  for (const LoweredAccess& acc : accesses) {
    i64 amin = acc.base, amax = acc.base;
    for (int d = 0; d < depth(); ++d) {
      const LoweredLoop& l = loops[static_cast<std::size_t>(d)];
      const i64 c = acc.levelCoeff[static_cast<std::size_t>(d)];
      const i64 first = c * l.begin;
      const i64 last = c * (l.begin + (l.trip - 1) * l.step);
      amin += std::min(first, last);
      amax += std::max(first, last);
    }
    lo = std::min(lo, amin);
    hi = std::max(hi, amax);
  }
  return {lo, hi};
}

LoweredAccess lowerAccess(const AddressMap& map, const LoopNest& nest,
                          const ArrayAccess& acc, int nestIdx, int accIdx) {
  LoweredAccess out;
  out.isWrite = acc.kind == loopir::AccessKind::Write;
  out.nest = nestIdx;
  out.accessIndex = accIdx;
  out.levelCoeff.assign(static_cast<std::size_t>(nest.depth()), 0);

  // Evaluate the map at the per-dimension minima to find the origin, then
  // add stride-weighted iterator coefficients.
  const std::vector<ValueRange>& range = map.paddedRange(acc.signal);
  std::vector<i64> minIndex;
  minIndex.reserve(range.size());
  for (const ValueRange& r : range) minIndex.push_back(r.min);
  const i64 origin = map.address(acc.signal, minIndex);
  out.base = origin;

  // stride_d = address delta for +1 in dimension d (probed off the
  // pristine origin).
  for (std::size_t d = 0; d < range.size(); ++d) {
    i64 stride = 0;  // degenerate extent: coefficient contributes nothing
    if (range[d].extent() > 1) {
      std::vector<i64> probe = minIndex;
      probe[d] += 1;
      stride = map.address(acc.signal, probe) - origin;
    }
    const loopir::AffineExpr& e = acc.indices[d];
    out.base += (e.constantTerm() - range[d].min) * stride;
    for (int l = 0; l < nest.depth(); ++l)
      out.levelCoeff[static_cast<std::size_t>(l)] += e.coeff(l) * stride;
  }
  return out;
}

std::vector<LoweredNest> lowerProgram(const Program& p, const AddressMap& map,
                                      const TraceFilter& filter) {
  DR_REQUIRE_MSG(filter.nest.has_value() == filter.accessIndex.has_value(),
                 "nest and accessIndex filters must be set together");
  std::vector<LoweredNest> out;
  for (std::size_t n = 0; n < p.nests.size(); ++n) {
    const LoopNest& nest = p.nests[n];
    LoweredNest ln;
    for (const loopir::Loop& l : nest.loops)
      ln.loops.push_back(LoweredLoop{l.begin, l.step, l.tripCount()});
    for (std::size_t a = 0; a < nest.body.size(); ++a)
      if (filter.matches(nest.body[a], static_cast<int>(n),
                         static_cast<int>(a)))
        ln.accesses.push_back(lowerAccess(map, nest, nest.body[a],
                                          static_cast<int>(n),
                                          static_cast<int>(a)));
    if (!ln.accesses.empty() && ln.iterations() > 0)
      out.push_back(std::move(ln));
  }
  return out;
}

TraceCursor::TraceCursor(const Program& p, const AddressMap& map,
                         const TraceFilter& filter)
    : TraceCursor(lowerProgram(p, map, filter)) {}

TraceCursor::TraceCursor(std::vector<LoweredNest> nests)
    : nests_(std::move(nests)) {
  for (const LoweredNest& n : nests_) length_ += n.events();
  reset();
}

void TraceCursor::enterNest(std::size_t n) {
  nestIdx_ = n;
  if (n >= nests_.size()) return;
  const std::size_t depth =
      static_cast<std::size_t>(nests_[n].depth());
  k_.assign(depth, 0);
  iter_.resize(depth);
  for (std::size_t d = 0; d < depth; ++d)
    iter_[d] = nests_[n].loops[d].begin;
}

void TraceCursor::reset() {
  produced_ = 0;
  truncated_ = false;
  enterNest(0);
}

i64 TraceCursor::nextChunk(std::vector<i64>& out, i64 maxEvents) {
  DR_REQUIRE(maxEvents >= 1);
  out.clear();
  if (budget_ != nullptr && !done() && budget_->tripped()) {
    truncated_ = true;
    return 0;
  }
  while (nestIdx_ < nests_.size() &&
         static_cast<i64>(out.size()) < maxEvents) {
    const LoweredNest& nest = nests_[nestIdx_];
    const int depth = nest.depth();
    const std::size_t udepth = static_cast<std::size_t>(depth);
    // Emit iteration points until the budget is met or the nest ends.
    for (;;) {
      for (const LoweredAccess& acc : nest.accesses) {
        i64 addr = acc.base;
        for (std::size_t d = 0; d < udepth; ++d)
          addr += acc.levelCoeff[d] * iter_[d];
        out.push_back(addr);
      }
      int d = depth - 1;
      for (; d >= 0; --d) {
        std::size_t ud = static_cast<std::size_t>(d);
        if (++k_[ud] < nest.loops[ud].trip) {
          iter_[ud] += nest.loops[ud].step;
          break;
        }
        k_[ud] = 0;
        iter_[ud] = nest.loops[ud].begin;
      }
      if (d < 0) {
        enterNest(nestIdx_ + 1);
        break;
      }
      if (static_cast<i64>(out.size()) >= maxEvents) break;
    }
  }
  produced_ += static_cast<i64>(out.size());
  if (budget_ != nullptr) budget_->chargeEvents(static_cast<i64>(out.size()));
  DR_ENSURE(produced_ <= length_);
  return static_cast<i64>(out.size());
}

// Advance the odometer one iteration point; returns false when the
// current nest is exhausted (the cursor then points at the next nest).
bool TraceCursor::stepIteration(const LoweredNest& nest) {
  int d = nest.depth() - 1;
  for (; d >= 0; --d) {
    std::size_t ud = static_cast<std::size_t>(d);
    if (++k_[ud] < nest.loops[ud].trip) {
      iter_[ud] += nest.loops[ud].step;
      return true;
    }
    k_[ud] = 0;
    iter_[ud] = nest.loops[ud].begin;
  }
  enterNest(nestIdx_ + 1);
  return false;
}

// Deepest trip > 1 level of a single-access nest, or -1 when the nest has
// no constant-stride burst to decode (multi-access interleaving, depth 0,
// or a single-iteration space). Levels below the returned one all have
// trip 1, so they contribute a constant to the address and are stepped
// through transparently by the odometer.
static int runLevelOf(const LoweredNest& nest) {
  if (nest.accesses.size() != 1) return -1;
  for (int d = nest.depth() - 1; d >= 0; --d)
    if (nest.loops[static_cast<std::size_t>(d)].trip > 1) return d;
  return -1;
}

i64 TraceCursor::nextRuns(RunBlock& out, i64 maxEvents) {
  DR_REQUIRE(maxEvents >= 1);
  out.clear();
  if (budget_ != nullptr && !done() && budget_->tripped()) {
    truncated_ = true;
    return 0;
  }
  while (nestIdx_ < nests_.size() && out.events < maxEvents) {
    const LoweredNest& nest = nests_[nestIdx_];
    const std::size_t udepth = static_cast<std::size_t>(nest.depth());
    const int rl = runLevelOf(nest);
    if (rl < 0) {
      // No burst structure: length-1 runs, whole iteration points (same
      // boundaries as nextChunk, same element order).
      for (;;) {
        for (const LoweredAccess& acc : nest.accesses) {
          i64 addr = acc.base;
          for (std::size_t d = 0; d < udepth; ++d)
            addr += acc.levelCoeff[d] * iter_[d];
          out.base.push_back(addr);
          out.stride.push_back(0);
          out.length.push_back(1);
          out.accessIndex.push_back(acc.accessIndex);
          ++out.events;
        }
        if (!stepIteration(nest)) break;
        if (out.events >= maxEvents) break;
      }
      continue;
    }
    const LoweredAccess& acc = nest.accesses[0];
    const std::size_t url = static_cast<std::size_t>(rl);
    const LoweredLoop& rloop = nest.loops[url];
    const i64 stride = acc.levelCoeff[url] * rloop.step;
    const i64 lastIter = rloop.begin + (rloop.trip - 1) * rloop.step;
    for (;;) {
      i64 base = acc.base;
      for (std::size_t d = 0; d < udepth; ++d)
        base += acc.levelCoeff[d] * iter_[d];
      // Consume the remainder of the current sweep, then step past it.
      i64 len = rloop.trip - k_[url];
      k_[url] = rloop.trip - 1;
      iter_[url] = lastIter;
      bool more = stepIteration(nest);
      // Greedily merge following whole sweeps while they continue the
      // progression. The cap is a fixed constant, so where a run ends
      // never depends on maxEvents.
      while (more && len + rloop.trip <= kMaxRunEvents) {
        i64 nb = acc.base;
        for (std::size_t d = 0; d < udepth; ++d)
          nb += acc.levelCoeff[d] * iter_[d];
        if (nb != base + stride * len) break;
        len += rloop.trip;
        k_[url] = rloop.trip - 1;
        iter_[url] = lastIter;
        more = stepIteration(nest);
      }
      out.base.push_back(base);
      out.stride.push_back(stride);
      out.length.push_back(len);
      out.accessIndex.push_back(acc.accessIndex);
      out.events += len;
      if (!more) break;
      if (out.events >= maxEvents) break;
    }
  }
  produced_ += out.events;
  if (budget_ != nullptr) budget_->chargeEvents(out.events);
  DR_ENSURE(produced_ <= length_);
  return out.events;
}

i64 TraceCursor::nextRuns(std::vector<AccessRun>& out, i64 maxEvents) {
  RunBlock block;
  const i64 n = nextRuns(block, maxEvents);
  out.clear();
  out.reserve(block.size());
  for (std::size_t i = 0; i < block.size(); ++i)
    out.push_back(AccessRun{block.base[i], block.stride[i], block.length[i],
                            block.accessIndex[i]});
  return n;
}

double TraceCursor::runLengthHint() const {
  i64 events = 0;
  i64 runs = 0;
  for (const LoweredNest& n : nests_) {
    const i64 ev = n.events();
    events += ev;
    const int rl = runLevelOf(n);
    runs += rl >= 0 ? ev / n.loops[static_cast<std::size_t>(rl)].trip : ev;
  }
  if (runs <= 0) return 1.0;
  return static_cast<double>(events) / static_cast<double>(runs);
}

std::pair<i64, i64> TraceCursor::addressRange() const {
  if (length_ == 0) return {0, -1};
  i64 lo = std::numeric_limits<i64>::max();
  i64 hi = std::numeric_limits<i64>::min();
  for (const LoweredNest& n : nests_) {
    auto [nlo, nhi] = n.addressRange();
    lo = std::min(lo, nlo);
    hi = std::max(hi, nhi);
  }
  return {lo, hi};
}

}  // namespace dr::trace
