#pragma once

#include <utility>
#include <vector>

#include "support/budget.h"
#include "support/contracts.h"
#include "trace/walker.h"

/// \file stream.h
/// Streaming trace generation: the iteration-space walk of walker.h
/// exposed as (1) a compile-time-polymorphic walker whose per-access
/// callback inlines into the odometer loop (no std::function dispatch on
/// multi-million-event traces), and (2) a pull-based, resumable
/// `TraceCursor` that hands out the access stream in bounded chunks so
/// consumers can process HD/4K traces without ever materializing them
/// (the ISSUE-2 streaming pipeline; see simcore/folded_curve.h for the
/// periodic-folding consumer).
///
/// The shared substrate is the *lowered* form of a nest: every matching
/// access collapsed to one flat affine address function
/// `addr = base + sum_level coeff[level] * iter[level]` (exact — see
/// lowerAccess). Both the walker and the cursor evaluate that form with a
/// recursion-free odometer; trace/period.h reads the same coefficients
/// symbolically to find steady-state periodicity.

namespace dr::trace {

/// One access pre-lowered to a flat affine address function.
struct LoweredAccess {
  std::vector<i64> levelCoeff;  ///< per loop level, address contribution
  i64 base = 0;
  bool isWrite = false;
  int nest = 0;
  int accessIndex = 0;
};

/// One loop level of a lowered nest (value = begin + k * step,
/// k in [0, trip)).
struct LoweredLoop {
  i64 begin = 0;
  i64 step = 1;
  i64 trip = 0;
};

/// A nest reduced to what trace generation needs: loop counters plus the
/// lowered accesses that survived the filter, in body order.
struct LoweredNest {
  std::vector<LoweredLoop> loops;      ///< outermost first
  std::vector<LoweredAccess> accesses;

  int depth() const noexcept { return static_cast<int>(loops.size()); }

  /// Product of all trip counts (1 for a depth-0 nest).
  i64 iterations() const;

  /// Total access events the nest emits: iterations() * accesses.
  i64 events() const;

  /// Smallest / largest address any access can produce (events() > 0).
  std::pair<i64, i64> addressRange() const;
};

/// Collapse an access's per-dimension affine expressions into one flat
/// affine address function using the AddressMap's strides. Exact because
/// address = base + sum_d (idx_d(expr) - min_d) * stride_d is itself
/// affine.
LoweredAccess lowerAccess(const AddressMap& map, const loopir::LoopNest& nest,
                          const loopir::ArrayAccess& acc, int nestIdx,
                          int accIdx);

/// Lower every nest of `p`, keeping only accesses matching `filter`;
/// nests with no matching access are dropped.
std::vector<LoweredNest> lowerProgram(const Program& p, const AddressMap& map,
                                      const TraceFilter& filter);

/// Visit every event of one lowered nest in program order. `Callback` is
/// invoked as cb(const AccessEvent&); being a template parameter, it
/// inlines into the odometer loop (measured ~2x over the std::function
/// walker on the E1 trace, bench_fig4a_me_reuse_curve).
template <class Callback>
void walkNest(const LoweredNest& nest, Callback&& cb) {
  const int depth = nest.depth();
  const std::size_t udepth = static_cast<std::size_t>(depth);
  std::vector<i64> iter(udepth), k(udepth, 0);
  for (std::size_t d = 0; d < udepth; ++d) iter[d] = nest.loops[d].begin;
  for (const LoweredLoop& l : nest.loops)
    if (l.trip <= 0) return;  // empty iteration space

  AccessEvent ev;
  for (;;) {
    for (const LoweredAccess& acc : nest.accesses) {
      i64 addr = acc.base;
      for (std::size_t d = 0; d < udepth; ++d)
        addr += acc.levelCoeff[d] * iter[d];
      ev.address = addr;
      ev.isWrite = acc.isWrite;
      ev.nest = acc.nest;
      ev.accessIndex = acc.accessIndex;
      cb(static_cast<const AccessEvent&>(ev));
    }
    int d = depth - 1;
    for (; d >= 0; --d) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++k[ud] < nest.loops[ud].trip) {
        iter[ud] += nest.loops[ud].step;
        break;
      }
      k[ud] = 0;
      iter[ud] = nest.loops[ud].begin;
    }
    if (d < 0) break;
  }
}

/// Compile-time-polymorphic overload of trace::walk: same semantics as
/// the std::function version in walker.h, but the callback inlines into
/// the hot loop. Lambdas bind here; explicit std::function arguments
/// still pick the non-template overload.
template <class Callback>
void walk(const Program& p, const AddressMap& map, const TraceFilter& filter,
          Callback&& cb) {
  DR_REQUIRE_MSG(filter.nest.has_value() == filter.accessIndex.has_value(),
                 "nest and accessIndex filters must be set together");
  for (const LoweredNest& nest : lowerProgram(p, map, filter))
    walkNest(nest, cb);
}

/// One constant-stride burst of the access stream: `length` consecutive
/// events at addresses base, base + stride, ..., base + (length-1)*stride,
/// all produced by the same lowered access. The run decoder
/// (TraceCursor::nextRuns) emits these for single-access nests — one run
/// per sweep of the deepest trip > 1 level, greedily merged when
/// consecutive sweeps continue the same arithmetic progression — and
/// falls back to length-1 runs when no burst exists (multi-access nests,
/// whose interleaved body order a per-access run would destroy).
struct AccessRun {
  i64 base = 0;
  i64 stride = 0;
  i64 length = 1;
  int accessIndex = 0;
};

/// Structure-of-arrays buffer of decoded runs: the simulation hot loop
/// streams flat parallel vectors instead of striding over structs.
struct RunBlock {
  std::vector<i64> base;
  std::vector<i64> stride;
  std::vector<i64> length;
  std::vector<int> accessIndex;
  i64 events = 0;  ///< sum of lengths

  std::size_t size() const noexcept { return base.size(); }
  void clear() {
    base.clear();
    stride.clear();
    length.clear();
    accessIndex.clear();
    events = 0;
  }
};

/// Pull-based generator over the filtered access stream: repeatedly fills
/// a caller buffer with the next chunk of addresses, keeping only O(depth)
/// state. Chunks always end on iteration-point boundaries (all accesses
/// of one iteration stay in one chunk), so a chunk holds at most
/// maxEvents + accessesPerIteration - 1 events.
class TraceCursor {
 public:
  static constexpr i64 kDefaultChunkEvents = i64{1} << 16;

  /// Longest run nextRuns() will build by merging sweeps — a fixed
  /// constant, so run identity never depends on the caller's chunk size.
  static constexpr i64 kMaxRunEvents = i64{1} << 20;

  TraceCursor(const Program& p, const AddressMap& map,
              const TraceFilter& filter);
  explicit TraceCursor(std::vector<LoweredNest> nests);

  /// Total events the full stream holds (independent of position).
  i64 length() const noexcept { return length_; }

  /// Events emitted so far.
  i64 position() const noexcept { return produced_; }

  bool done() const noexcept { return produced_ == length_; }

  /// Rewind to the start of the stream (clears a budget truncation).
  void reset();

  /// Attach a cooperative budget (may be null to detach): each nextChunk
  /// call first polls it and refuses to *start* a chunk once tripped —
  /// returning 0 with truncated() set — and charges the events it emits.
  /// Whole chunks only: a chunk in flight is never cut short, so every
  /// consumer downstream sees chunk-aligned (hence fold-aligned) data.
  void attachBudget(const support::RunBudget* budget) noexcept {
    budget_ = budget;
  }

  /// True when a nextChunk call was refused by a tripped budget; the
  /// stream stopped early and position() < length().
  bool truncated() const noexcept { return truncated_; }

  /// Replaces `out` with the next >= 1 whole iteration points, stopping
  /// at the first boundary at or past `maxEvents` events. Returns the
  /// number of addresses written; 0 iff the stream is exhausted or the
  /// attached budget tripped (distinguish via truncated()).
  i64 nextChunk(std::vector<i64>& out,
                i64 maxEvents = kDefaultChunkEvents);

  /// Replaces `out` with the next decoded runs, stopping at the first run
  /// boundary at or past `maxEvents` events (the call may overshoot by
  /// less than one run, but never splits one — run identity is
  /// independent of the caller's chunk size). Returns the number of
  /// events covered; 0 iff exhausted or the budget tripped (distinguish
  /// via truncated()). Decode rules: a single-access nest sweeps its
  /// deepest trip > 1 level as one constant-stride run per sweep,
  /// greedily merged across outer-level steps while the arithmetic
  /// progression continues (capped at kMaxRunEvents); multi-access and
  /// depth-0 nests fall back to length-1 runs in body order, preserving
  /// the exact element stream.
  i64 nextRuns(RunBlock& out, i64 maxEvents = kDefaultChunkEvents);

  /// Convenience AoS overload of nextRuns (converts from a RunBlock).
  i64 nextRuns(std::vector<AccessRun>& out,
               i64 maxEvents = kDefaultChunkEvents);

  /// Static estimate of the mean decoded run length (events per run,
  /// ignoring greedy sweep merging — a conservative lower bound).
  /// Multi-access and depth-0 nests count one run per event. Consumers
  /// use this to skip the run path when it cannot pay off.
  double runLengthHint() const;

  const std::vector<LoweredNest>& nests() const noexcept { return nests_; }

  /// Smallest / largest address the stream can produce; {0, -1} for an
  /// empty stream.
  std::pair<i64, i64> addressRange() const;

 private:
  void enterNest(std::size_t n);
  bool stepIteration(const LoweredNest& nest);

  std::vector<LoweredNest> nests_;
  std::size_t nestIdx_ = 0;
  std::vector<i64> k_;     ///< odometer counters of the current nest
  std::vector<i64> iter_;  ///< iterator values of the current nest
  i64 length_ = 0;
  i64 produced_ = 0;
  const support::RunBudget* budget_ = nullptr;
  bool truncated_ = false;
};

}  // namespace dr::trace
