#include "trace/timeframe.h"

#include <algorithm>
#include <unordered_set>

#include "support/contracts.h"

namespace dr::trace {

TimeFrameReport analyzeTimeFrames(const Trace& trace, int frameCount) {
  DR_REQUIRE(frameCount >= 1);
  TimeFrameReport report;
  report.totalAccesses = trace.length();
  report.totalDistinct = trace.distinctCount();

  i64 n = trace.length();
  i64 frameLen = (n + frameCount - 1) / frameCount;
  if (frameLen == 0) frameLen = 1;

  std::unordered_set<i64> seen;
  for (i64 start = 0; start < n; start += frameLen) {
    i64 stop = std::min(n, start + frameLen);
    seen.clear();
    for (i64 t = start; t < stop; ++t)
      seen.insert(trace.addresses[static_cast<std::size_t>(t)]);
    TimeFrame f;
    f.firstAccess = start;
    f.accessCount = stop - start;
    f.distinctElements = static_cast<i64>(seen.size());
    f.reusePerElement = f.distinctElements == 0
                            ? 0.0
                            : static_cast<double>(f.accessCount) /
                                  static_cast<double>(f.distinctElements);
    report.frames.push_back(f);
  }

  double sum = 0.0;
  for (const TimeFrame& f : report.frames) {
    report.maxFrameDistinct =
        std::max(report.maxFrameDistinct,
                 static_cast<double>(f.distinctElements));
    sum += static_cast<double>(f.distinctElements);
  }
  if (!report.frames.empty())
    report.avgFrameDistinct = sum / static_cast<double>(report.frames.size());
  return report;
}

}  // namespace dr::trace
