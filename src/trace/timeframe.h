#pragma once

#include <vector>

#include "trace/walker.h"

/// \file timeframe.h
/// Time-frame locality analysis behind the paper's Fig. 1: over a very
/// large time-frame all data values of an array are touched, but inside
/// small time-frames only a fraction is — which is exactly the fraction
/// that needs to fit in a smaller, less power-hungry memory.

namespace dr::trace {

/// Statistics of one time window of the trace.
struct TimeFrame {
  i64 firstAccess = 0;  ///< index of the first access in this frame
  i64 accessCount = 0;
  i64 distinctElements = 0;  ///< working set of the frame
  double reusePerElement = 0.0;  ///< accessCount / distinctElements
};

struct TimeFrameReport {
  std::vector<TimeFrame> frames;
  i64 totalAccesses = 0;
  i64 totalDistinct = 0;
  double maxFrameDistinct = 0.0;
  double avgFrameDistinct = 0.0;
};

/// Split `trace` into `frameCount` equal windows (the last may be shorter)
/// and compute the per-frame working sets. Precondition: frameCount >= 1.
TimeFrameReport analyzeTimeFrames(const Trace& trace, int frameCount);

}  // namespace dr::trace
