#include "trace/walker.h"

#include <algorithm>

#include "support/contracts.h"

namespace dr::trace {

using loopir::AccessKind;
using loopir::ArrayAccess;
using loopir::LoopNest;

bool TraceFilter::matches(const ArrayAccess& a, int nestIdx,
                          int accIdx) const {
  if (signal >= 0 && a.signal != signal) return false;
  if (a.kind == AccessKind::Read && !includeReads) return false;
  if (a.kind == AccessKind::Write && !includeWrites) return false;
  if (nest.has_value() && *nest != nestIdx) return false;
  if (accessIndex.has_value() && *accessIndex != accIdx) return false;
  return true;
}

namespace {

/// Pre-lowered access: address = sum_level coeff[level]*iter[level] + base.
struct LoweredAccess {
  std::vector<i64> levelCoeff;  ///< per loop level, address contribution
  i64 base = 0;
  bool isWrite = false;
  int nest = 0;
  int accessIndex = 0;
};

/// Collapse an access's per-dimension affine expressions into one flat
/// affine address function using the AddressMap's strides. Exact because
/// address = base + sum_d (idx_d(expr) - min_d) * stride_d is itself affine.
LoweredAccess lowerAccess(const AddressMap& map, const LoopNest& nest,
                          const ArrayAccess& acc, int nestIdx, int accIdx) {
  LoweredAccess out;
  out.isWrite = acc.kind == AccessKind::Write;
  out.nest = nestIdx;
  out.accessIndex = accIdx;
  out.levelCoeff.assign(static_cast<std::size_t>(nest.depth()), 0);

  // Evaluate the map at the per-dimension minima to find the origin, then
  // add stride-weighted iterator coefficients.
  const std::vector<ValueRange>& range = map.paddedRange(acc.signal);
  std::vector<i64> minIndex;
  minIndex.reserve(range.size());
  for (const ValueRange& r : range) minIndex.push_back(r.min);
  const i64 origin = map.address(acc.signal, minIndex);
  out.base = origin;

  // stride_d = address delta for +1 in dimension d (probed off the
  // pristine origin).
  for (std::size_t d = 0; d < range.size(); ++d) {
    i64 stride = 0;  // degenerate extent: coefficient contributes nothing
    if (range[d].extent() > 1) {
      std::vector<i64> probe = minIndex;
      probe[d] += 1;
      stride = map.address(acc.signal, probe) - origin;
    }
    const loopir::AffineExpr& e = acc.indices[d];
    out.base += (e.constantTerm() - range[d].min) * stride;
    for (int l = 0; l < nest.depth(); ++l)
      out.levelCoeff[static_cast<std::size_t>(l)] += e.coeff(l) * stride;
  }
  return out;
}

void walkNest(const LoopNest& nest, const std::vector<LoweredAccess>& accesses,
              const std::function<void(const AccessEvent&)>& callback) {
  int depth = nest.depth();
  std::vector<i64> iter(static_cast<std::size_t>(depth));
  std::vector<i64> trip(static_cast<std::size_t>(depth));
  for (int d = 0; d < depth; ++d)
    trip[static_cast<std::size_t>(d)] =
        nest.loops[static_cast<std::size_t>(d)].tripCount();

  // Explicit odometer loop: recursion-free for speed on multi-million
  // iteration spaces.
  std::vector<i64> k(static_cast<std::size_t>(depth), 0);
  for (int d = 0; d < depth; ++d)
    iter[static_cast<std::size_t>(d)] =
        nest.loops[static_cast<std::size_t>(d)].begin;

  AccessEvent ev;
  for (;;) {
    for (const LoweredAccess& acc : accesses) {
      i64 addr = acc.base;
      for (int d = 0; d < depth; ++d)
        addr += acc.levelCoeff[static_cast<std::size_t>(d)] *
                iter[static_cast<std::size_t>(d)];
      ev.address = addr;
      ev.isWrite = acc.isWrite;
      ev.nest = acc.nest;
      ev.accessIndex = acc.accessIndex;
      callback(ev);
    }
    // Advance the odometer (innermost fastest).
    int d = depth - 1;
    for (; d >= 0; --d) {
      std::size_t ud = static_cast<std::size_t>(d);
      if (++k[ud] < trip[ud]) {
        iter[ud] += nest.loops[ud].step;
        break;
      }
      k[ud] = 0;
      iter[ud] = nest.loops[ud].begin;
    }
    if (d < 0) break;
  }
}

}  // namespace

void walk(const Program& p, const AddressMap& map, const TraceFilter& filter,
          const std::function<void(const AccessEvent&)>& callback) {
  DR_REQUIRE(static_cast<bool>(callback));
  DR_REQUIRE_MSG(filter.nest.has_value() == filter.accessIndex.has_value(),
                 "nest and accessIndex filters must be set together");
  for (std::size_t n = 0; n < p.nests.size(); ++n) {
    const LoopNest& nest = p.nests[n];
    std::vector<LoweredAccess> accesses;
    for (std::size_t a = 0; a < nest.body.size(); ++a)
      if (filter.matches(nest.body[a], static_cast<int>(n),
                         static_cast<int>(a)))
        accesses.push_back(lowerAccess(map, nest, nest.body[a],
                                       static_cast<int>(n),
                                       static_cast<int>(a)));
    if (!accesses.empty()) walkNest(nest, accesses, callback);
  }
}

i64 Trace::distinctCount() const { return densify(addresses).distinct(); }

Trace collectTrace(const Program& p, const AddressMap& map,
                   const TraceFilter& filter) {
  Trace t;
  walk(p, map, filter,
       [&t](const AccessEvent& ev) { t.addresses.push_back(ev.address); });
  return t;
}

Trace readTrace(const Program& p, const AddressMap& map, int signal) {
  TraceFilter f;
  f.signal = signal;
  f.includeReads = true;
  f.includeWrites = false;
  return collectTrace(p, map, f);
}

}  // namespace dr::trace
