#include "trace/walker.h"

#include "support/contracts.h"
#include "trace/stream.h"

namespace dr::trace {

using loopir::AccessKind;
using loopir::ArrayAccess;

bool TraceFilter::matches(const ArrayAccess& a, int nestIdx,
                          int accIdx) const {
  if (signal >= 0 && a.signal != signal) return false;
  if (a.kind == AccessKind::Read && !includeReads) return false;
  if (a.kind == AccessKind::Write && !includeWrites) return false;
  if (nest.has_value() && *nest != nestIdx) return false;
  if (accessIndex.has_value() && *accessIndex != accIdx) return false;
  return true;
}

void walk(const Program& p, const AddressMap& map, const TraceFilter& filter,
          const std::function<void(const AccessEvent&)>& callback) {
  DR_REQUIRE(static_cast<bool>(callback));
  // Delegate to the templated walker (stream.h); the indirection through
  // std::function happens per event, the lowering and odometer are shared.
  for (const LoweredNest& nest : lowerProgram(p, map, filter))
    walkNest(nest, [&callback](const AccessEvent& ev) { callback(ev); });
}

i64 Trace::distinctCount() const { return densify(addresses).distinct(); }

Trace collectTrace(const Program& p, const AddressMap& map,
                   const TraceFilter& filter) {
  Trace t;
  std::vector<LoweredNest> nests = lowerProgram(p, map, filter);
  i64 total = 0;
  for (const LoweredNest& n : nests) total += n.events();
  t.addresses.reserve(static_cast<std::size_t>(total));
  for (const LoweredNest& nest : nests)
    walkNest(nest, [&t](const AccessEvent& ev) {
      t.addresses.push_back(ev.address);
    });
  return t;
}

Trace readTrace(const Program& p, const AddressMap& map, int signal) {
  TraceFilter f;
  f.signal = signal;
  f.includeReads = true;
  f.includeWrites = false;
  return collectTrace(p, map, f);
}

}  // namespace dr::trace
