#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "loopir/program.h"
#include "trace/address_map.h"

/// \file walker.h
/// Executes a Program's iteration space in program order and reports every
/// matching access occurrence. This is the trace generator behind the
/// simulation prototype of [29] (paper Section 4).

namespace dr::trace {

/// Selects which access occurrences to report.
struct TraceFilter {
  int signal = -1;  ///< restrict to one signal; -1 = all signals
  bool includeReads = true;
  bool includeWrites = false;
  /// Restrict to one access slot of one nest; both or neither must be set.
  std::optional<int> nest;
  std::optional<int> accessIndex;

  bool matches(const loopir::ArrayAccess& a, int nestIdx, int accIdx) const;
};

/// One reported occurrence.
struct AccessEvent {
  i64 address = 0;  ///< flat address from the AddressMap
  bool isWrite = false;
  int nest = 0;         ///< index of the loop nest
  int accessIndex = 0;  ///< index of the access within the nest body
};

/// Visit matching occurrences in time order. The callback may not be null.
void walk(const Program& p, const AddressMap& map, const TraceFilter& filter,
          const std::function<void(const AccessEvent&)>& callback);

/// Flat in-memory trace: addresses in time order (metadata dropped).
struct Trace {
  std::vector<i64> addresses;

  i64 length() const { return static_cast<i64>(addresses.size()); }

  /// Number of distinct addresses in the trace.
  i64 distinctCount() const;
};

/// Compact a trace's address stream to dense ids (see DenseTrace).
inline DenseTrace densify(const Trace& trace) {
  return densify(trace.addresses);
}

/// Materialize the matching trace. For the read-reuse analyses this is
/// typically called with {signal = s, reads only}.
Trace collectTrace(const Program& p, const AddressMap& map,
                   const TraceFilter& filter);

/// Convenience: read-only trace of one signal (the paper's unit of
/// analysis: "all read operations to a given array A", Section 1).
Trace readTrace(const Program& p, const AddressMap& map, int signal);

}  // namespace dr::trace
