#pragma once

// Shared builders for the test suite: the paper's generic double loop of
// Fig. 5 with an affine access, in 1-D and multi-dimensional variants.

#include <vector>

#include "loopir/program.h"
#include "loopir/validate.h"

namespace dr::test {

using dr::support::i64;
using loopir::AffineExpr;
using loopir::ArrayAccess;
using loopir::Loop;
using loopir::LoopNest;
using loopir::Program;

/// Bounds of the (j,k) pair.
struct PairBox {
  i64 jL = 0, jU = 0;
  i64 kL = 0, kU = 0;
};

/// One dimension's coefficients for the generic access
/// A[b*j + c*k + d]...
struct DimCoeffs {
  i64 b = 0;
  i64 c = 0;
  i64 d = 0;
};

/// Generic double loop (paper Fig. 5) with one read of a (possibly
/// multi-dimensional) signal A. The signal is declared just large enough
/// for the index ranges (the AddressMap pads anyway).
inline Program genericDoubleLoop(const PairBox& box,
                                 const std::vector<DimCoeffs>& dims) {
  Program prog;
  prog.name = "generic";
  std::vector<i64> extents;
  for (const DimCoeffs& dc : dims) {
    i64 span = 1;
    span += (dc.b >= 0 ? dc.b : -dc.b) * (box.jU - box.jL);
    span += (dc.c >= 0 ? dc.c : -dc.c) * (box.kU - box.kL);
    extents.push_back(span);
  }
  int sig = loopir::addSignal(prog, "A", extents, 8);

  LoopNest nest;
  nest.loops = {Loop{"j", box.jL, box.jU, 1}, Loop{"k", box.kL, box.kU, 1}};
  ArrayAccess acc;
  acc.signal = sig;
  acc.kind = loopir::AccessKind::Read;
  for (const DimCoeffs& dc : dims) {
    AffineExpr e(dc.d);
    e.setCoeff(0, dc.b);
    e.setCoeff(1, dc.c);
    acc.indices.push_back(e);
  }
  nest.body.push_back(std::move(acc));
  prog.nests.push_back(std::move(nest));
  loopir::validateOrThrow(prog);
  return prog;
}

/// 1-D convenience overload.
inline Program genericDoubleLoop(const PairBox& box, i64 b, i64 c,
                                 i64 d = 0) {
  return genericDoubleLoop(box, std::vector<DimCoeffs>{{b, c, d}});
}

/// Triple loop with an intermediate level between the reuse pair, for the
/// Section 6.3 repeat-factor cases: loops (j, r, k); the access is
/// A[e*r + dr][b*j + c*k + d] when `dependsOnR`, else A[b*j + c*k + d]
/// with r absent.
inline Program tripleLoopWithIntermediate(const PairBox& box, i64 rTrip,
                                          i64 b, i64 c, bool dependsOnR) {
  Program prog;
  prog.name = "triple";
  std::vector<i64> extents;
  i64 span = 1 + (b >= 0 ? b : -b) * (box.jU - box.jL) +
             (c >= 0 ? c : -c) * (box.kU - box.kL);
  if (dependsOnR) extents.push_back(rTrip);
  extents.push_back(span);
  int sig = loopir::addSignal(prog, "A", extents, 8);

  LoopNest nest;
  nest.loops = {Loop{"j", box.jL, box.jU, 1}, Loop{"r", 0, rTrip - 1, 1},
                Loop{"k", box.kL, box.kU, 1}};
  ArrayAccess acc;
  acc.signal = sig;
  acc.kind = loopir::AccessKind::Read;
  if (dependsOnR) {
    AffineExpr re;
    re.setCoeff(1, 1);
    acc.indices.push_back(re);
  }
  AffineExpr e;
  e.setCoeff(0, b);
  e.setCoeff(2, c);
  acc.indices.push_back(e);
  nest.body.push_back(std::move(acc));
  prog.nests.push_back(std::move(nest));
  loopir::validateOrThrow(prog);
  return prog;
}

}  // namespace dr::test
