// Tests for the ADOPT-style address optimization stage: the address
// expression IR, interval analysis, the algebraic simplifier (with the
// exactness property: simplified expressions evaluate identically over
// the whole iteration space), induction-variable strength reduction, and
// the optimized code templates.

#include <gtest/gtest.h>

#include "adopt/addr_expr.h"
#include "adopt/range.h"
#include "adopt/simplify.h"
#include "adopt/strength.h"
#include "codegen/optimized.h"
#include "helpers.h"
#include "kernels/motion_estimation.h"
#include "support/contracts.h"
#include "support/rng.h"

#include <functional>
#include <tuple>

namespace {

using namespace dr::adopt;
namespace loopir = dr::loopir;
using dr::support::i64;
using dr::test::PairBox;

loopir::LoopNest twoLoops(i64 jR, i64 kR) {
  loopir::LoopNest nest;
  nest.loops = {loopir::Loop{"j", 0, jR - 1, 1},
                loopir::Loop{"k", 0, kR - 1, 1}};
  return nest;
}

/// Evaluate `e` at every iteration of `nest` and compare against `f`.
void expectEquivalent(const AddrExprPtr& e, const AddrExprPtr& f,
                      const loopir::LoopNest& nest) {
  std::vector<i64> iters(static_cast<std::size_t>(nest.depth()));
  std::function<void(int)> walk = [&](int d) {
    if (d == nest.depth()) {
      ASSERT_EQ(e->evaluate(iters), f->evaluate(iters));
      return;
    }
    const loopir::Loop& loop = nest.loops[static_cast<std::size_t>(d)];
    for (i64 t = 0; t < loop.tripCount(); ++t) {
      iters[static_cast<std::size_t>(d)] = loop.valueAt(t);
      walk(d + 1);
    }
  };
  walk(0);
}

TEST(AddrExprTest, FactoriesAndEvaluate) {
  auto e = AddrExpr::add({AddrExpr::mul({AddrExpr::constant(3),
                                         AddrExpr::iter(0)}),
                          AddrExpr::iter(1), AddrExpr::constant(-2)});
  EXPECT_EQ(e->evaluate({4, 5}), 3 * 4 + 5 - 2);
  EXPECT_EQ(e->maxIterator(), 1);
  EXPECT_EQ(e->divModCount(), 0);
  auto m = AddrExpr::mod(e, 7);
  EXPECT_EQ(m->evaluate({4, 5}), (3 * 4 + 5 - 2) % 7);
  EXPECT_EQ(m->divModCount(), 1);
  EXPECT_THROW(AddrExpr::mod(e, 0), dr::support::ContractViolation);
  EXPECT_THROW(AddrExpr::floorDiv(e, -2), dr::support::ContractViolation);
}

TEST(AddrExprTest, MathematicalModAndDiv) {
  auto e = AddrExpr::add({AddrExpr::iter(0), AddrExpr::constant(-10)});
  auto m = AddrExpr::mod(e, 3);
  EXPECT_EQ(m->evaluate({0}), 2);  // mod(-10, 3) = 2, not -1
  auto d = AddrExpr::floorDiv(e, 3);
  EXPECT_EQ(d->evaluate({0}), -4);  // floor(-10/3) = -4
}

TEST(AddrExprTest, FromAffine) {
  loopir::AffineExpr a(7);
  a.setCoeff(0, 2);
  a.setCoeff(2, -1);
  auto e = AddrExpr::fromAffine(a);
  EXPECT_EQ(e->evaluate({3, 99, 4}), 2 * 3 - 4 + 7);
}

TEST(AddrExprTest, EqualityAndPrinting) {
  auto a = AddrExpr::add({AddrExpr::iter(0), AddrExpr::constant(1)});
  auto b = AddrExpr::add({AddrExpr::iter(0), AddrExpr::constant(1)});
  auto c = AddrExpr::add({AddrExpr::iter(0), AddrExpr::constant(2)});
  EXPECT_TRUE(a->equals(*b));
  EXPECT_FALSE(a->equals(*c));
  EXPECT_EQ(AddrExpr::mod(a, 5)->str({"x"}), "MOD((x + 1), 5)");
}

TEST(RangeAnalysis, ExactForTemplateShapes) {
  auto nest = twoLoops(10, 6);
  // kk + DIV(jj, 2)*3: jj in [0,9] -> DIV in [0,4]; kk in [0,5].
  auto e = AddrExpr::add(
      {AddrExpr::iter(1),
       AddrExpr::mul({AddrExpr::floorDiv(AddrExpr::iter(0), 2),
                      AddrExpr::constant(3)})});
  Interval r = exprRange(*e, nest);
  EXPECT_EQ(r.lo, 0);
  EXPECT_EQ(r.hi, 5 + 4 * 3);
}

TEST(RangeAnalysis, ModWithinOnePeriodIsTight) {
  auto nest = twoLoops(4, 4);
  auto e = AddrExpr::mod(
      AddrExpr::add({AddrExpr::iter(1), AddrExpr::constant(10)}), 20);
  Interval r = exprRange(*e, nest);
  EXPECT_EQ(r.lo, 10);
  EXPECT_EQ(r.hi, 13);
}

TEST(RangeAnalysis, NegativeProducts) {
  auto nest = twoLoops(5, 5);
  auto e = AddrExpr::mul({AddrExpr::constant(-3), AddrExpr::iter(0)});
  Interval r = exprRange(*e, nest);
  EXPECT_EQ(r.lo, -12);
  EXPECT_EQ(r.hi, 0);
}

TEST(Simplify, BasicIdentities) {
  auto nest = twoLoops(8, 8);
  auto x = AddrExpr::iter(0);
  // x*1 + 0 -> x
  auto e = simplify(AddrExpr::add({AddrExpr::mul({x, AddrExpr::constant(1)}),
                                   AddrExpr::constant(0)}),
                    nest);
  EXPECT_TRUE(e->equals(*x));
  // x*0 -> 0
  e = simplify(AddrExpr::mul({x, AddrExpr::constant(0)}), nest);
  EXPECT_EQ(e->kind(), AddrExpr::Kind::Const);
  EXPECT_EQ(e->value(), 0);
  // MOD(e, 1) -> 0, DIV(e, 1) -> e
  EXPECT_EQ(simplify(AddrExpr::mod(x, 1), nest)->value(), 0);
  EXPECT_TRUE(simplify(AddrExpr::floorDiv(x, 1), nest)->equals(*x));
}

TEST(Simplify, LikeTermsMerge) {
  auto nest = twoLoops(8, 8);
  auto x = AddrExpr::iter(0);
  auto e = simplify(
      AddrExpr::add({AddrExpr::mul({AddrExpr::constant(3), x}),
                     AddrExpr::mul({AddrExpr::constant(5), x})}),
      nest);
  // 3x + 5x -> 8x
  EXPECT_EQ(e->kind(), AddrExpr::Kind::Mul);
  expectEquivalent(
      e, AddrExpr::mul({AddrExpr::constant(8), x}), nest);
  // 3x - 3x -> 0
  e = simplify(AddrExpr::add({AddrExpr::mul({AddrExpr::constant(3), x}),
                              AddrExpr::mul({AddrExpr::constant(-3), x})}),
               nest);
  EXPECT_EQ(e->kind(), AddrExpr::Kind::Const);
  EXPECT_EQ(e->value(), 0);
}

TEST(Simplify, RangeDischargesMod) {
  auto nest = twoLoops(8, 6);
  auto k = AddrExpr::iter(1);  // in [0, 5]
  // MOD(k, 8) -> k (argument provably in range).
  EXPECT_TRUE(simplify(AddrExpr::mod(k, 8), nest)->equals(*k));
  // MOD(k + 16, 8) -> k (multiples of 8 absorbed).
  auto e = simplify(
      AddrExpr::mod(AddrExpr::add({k, AddrExpr::constant(16)}), 8), nest);
  EXPECT_TRUE(e->equals(*k));
  // MOD(k, 4) cannot be discharged (k reaches 5).
  e = simplify(AddrExpr::mod(k, 4), nest);
  EXPECT_EQ(e->kind(), AddrExpr::Kind::Mod);
}

TEST(Simplify, DivisionSplitting) {
  auto nest = twoLoops(8, 6);
  auto j = AddrExpr::iter(0);
  auto k = AddrExpr::iter(1);
  // DIV(8*j + k, 8) -> j (k in [0,5] contributes 0).
  auto e = simplify(
      AddrExpr::floorDiv(
          AddrExpr::add({AddrExpr::mul({AddrExpr::constant(8), j}), k}), 8),
      nest);
  EXPECT_TRUE(e->equals(*j));
  // DIV(8*j + k + 9, 8) -> j + 1.
  e = simplify(
      AddrExpr::floorDiv(
          AddrExpr::add({AddrExpr::mul({AddrExpr::constant(8), j}), k,
                         AddrExpr::constant(9)}),
          8),
      nest);
  expectEquivalent(e, AddrExpr::add({j, AddrExpr::constant(1)}), nest);
  EXPECT_EQ(e->divModCount(), 0);
}

TEST(Simplify, NestedModCollapse) {
  auto nest = twoLoops(30, 6);
  auto j = AddrExpr::iter(0);
  // MOD(MOD(j, 12), 4) -> MOD(j, 4).
  auto e = simplify(AddrExpr::mod(AddrExpr::mod(j, 12), 4), nest);
  EXPECT_EQ(e->kind(), AddrExpr::Kind::Mod);
  EXPECT_EQ(e->divisor(), 4);
  EXPECT_EQ(e->divModCount(), 1);
  expectEquivalent(e, AddrExpr::mod(j, 4), nest);
}

TEST(Simplify, TemplateColumnExpression) {
  // The Fig. 8 column subscript MOD(kk + DIV(jj, c)*b, N) for c=1
  // simplifies: DIV(jj, 1) -> jj, leaving MOD(kk + jj*b, N).
  auto nest = twoLoops(10, 5);
  auto jj = AddrExpr::iter(0);
  auto kk = AddrExpr::iter(1);
  auto col = AddrExpr::mod(
      AddrExpr::add({kk, AddrExpr::mul({AddrExpr::floorDiv(jj, 1),
                                        AddrExpr::constant(1)})}),
      4);
  auto e = simplify(col, nest);
  EXPECT_EQ(e->divModCount(), 1);  // the DIV disappeared
  expectEquivalent(e, col, nest);
}

/// Property: simplification never changes the value anywhere.
class SimplifyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplifyProperty, ExactOverIterationSpace) {
  dr::support::Rng rng(GetParam());
  auto nest = twoLoops(rng.uniform(2, 12), rng.uniform(2, 12));

  // Random expression tree over {j, k} with div/mod sprinkled in.
  std::function<AddrExprPtr(int)> gen = [&](int budget) -> AddrExprPtr {
    if (budget <= 1) {
      switch (rng.uniform(0, 2)) {
        case 0: return AddrExpr::constant(rng.uniform(-9, 9));
        case 1: return AddrExpr::iter(0);
        default: return AddrExpr::iter(1);
      }
    }
    switch (rng.uniform(0, 3)) {
      case 0:
        return AddrExpr::add({gen(budget / 2), gen(budget / 2)});
      case 1:
        return AddrExpr::mul(
            {AddrExpr::constant(rng.uniform(-4, 4)), gen(budget - 1)});
      case 2:
        return AddrExpr::floorDiv(gen(budget - 1), rng.uniform(1, 6));
      default:
        return AddrExpr::mod(gen(budget - 1), rng.uniform(1, 8));
    }
  };
  for (int i = 0; i < 20; ++i) {
    AddrExprPtr e = gen(8);
    AddrExprPtr s = simplify(e, nest);
    expectEquivalent(e, s, nest);
    EXPECT_LE(s->divModCount(), e->divModCount());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Strength, PlainAffineCounter) {
  auto nest = twoLoops(10, 6);
  // addr = 6*j + k: along k the delta is 1; along j it is 6.
  auto e = AddrExpr::add(
      {AddrExpr::mul({AddrExpr::constant(6), AddrExpr::iter(0)}),
       AddrExpr::iter(1)});
  auto planK = makeInductionPlan(simplify(e, nest), nest, 1);
  ASSERT_TRUE(planK.has_value());
  EXPECT_EQ(planK->step, 1);
  EXPECT_EQ(planK->modulus, 0);
  EXPECT_EQ(verifyInductionPlan(e, nest, *planK), 0);

  // Along j the expression depends on the deeper k: not reducible there.
  EXPECT_FALSE(makeInductionPlan(e, nest, 0).has_value());
}

TEST(Strength, ModWrapCounter) {
  auto nest = twoLoops(10, 6);
  auto e = AddrExpr::mod(
      AddrExpr::add({AddrExpr::iter(1),
                     AddrExpr::mul({AddrExpr::constant(2),
                                    AddrExpr::iter(0)})}),
      5);
  // Not reducible along j (deeper k varies), reducible along k.
  auto plan = makeInductionPlan(e, nest, 1);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->step, 1);
  EXPECT_EQ(plan->modulus, 5);
  EXPECT_EQ(verifyInductionPlan(e, nest, *plan), 0);
  EXPECT_EQ(plan->updateStatement("col"),
            "col += 1; if (col >= 5) col -= 5;");
}

TEST(Strength, RowRingAlongOuterLoop) {
  auto nest = twoLoops(12, 6);
  // row = MOD(j, 3): constant across k, wrap-3 counter along j.
  auto e = AddrExpr::mod(AddrExpr::iter(0), 3);
  auto plan = makeInductionPlan(e, nest, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->step, 1);
  EXPECT_EQ(plan->modulus, 3);
  EXPECT_EQ(verifyInductionPlan(e, nest, *plan), 0);
}

TEST(Strength, DivAlongDrivingLoopNotReducible) {
  auto nest = twoLoops(12, 6);
  // DIV(j, 3) has a non-constant per-j delta (0,0,1,0,0,1,...).
  auto e = AddrExpr::floorDiv(AddrExpr::iter(0), 3);
  EXPECT_FALSE(makeInductionPlan(e, nest, 0).has_value());
}

TEST(Strength, StridedLoopDelta) {
  loopir::LoopNest nest;
  nest.loops = {loopir::Loop{"j", 0, 20, 4}};  // step 4
  auto e = AddrExpr::mul({AddrExpr::constant(3), AddrExpr::iter(0)});
  auto plan = makeInductionPlan(e, nest, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->step, 12);  // 3 * loop step
  EXPECT_EQ(verifyInductionPlan(e, nest, *plan), 0);
}

TEST(OptimizedTemplate, AddressingVerifiesOnME) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  int oldIdx = dr::kernels::oldAccessIndex();
  auto m = dr::analytic::analyzePair(p.nests[0], p.nests[0].body[oldIdx], 3);
  EXPECT_EQ(dr::codegen::verifyOptimizedAddressing(p, 0, oldIdx, m), 0);
  for (i64 g : {1, 2}) {
    for (bool bypass : {false, true}) {
      dr::codegen::TemplateSpec spec;
      spec.gamma = g;
      spec.bypass = bypass;
      EXPECT_EQ(dr::codegen::verifyOptimizedAddressing(p, 0, oldIdx, m, spec),
                0)
          << "gamma " << g << " bypass " << bypass;
    }
  }
}

TEST(OptimizedTemplate, AddressingVerifiesOnGenericSweep) {
  for (auto [b, c, jR, kR] :
       {std::tuple<i64, i64, i64, i64>{1, 1, 10, 5},
        {2, 3, 12, 11},
        {1, 2, 9, 7},
        {3, 2, 12, 11},
        {2, 4, 9, 13}}) {
    auto p = dr::test::genericDoubleLoop({0, jR - 1, 0, kR - 1}, b, c);
    auto m = dr::analytic::analyzePair(p.nests[0], p.nests[0].body[0], 0);
    if (!m.hasReuse) continue;
    EXPECT_EQ(dr::codegen::verifyOptimizedAddressing(p, 0, 0, m), 0)
        << "b=" << b << " c=" << c;
  }
}

TEST(OptimizedTemplate, EmitsInductionUpdates) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  int oldIdx = dr::kernels::oldAccessIndex();
  auto m = dr::analytic::analyzePair(p.nests[0], p.nests[0].body[oldIdx], 3);
  auto code = dr::codegen::generateOptimizedTemplate(p, 0, oldIdx, m);
  // No per-access modulo left; counters instead.
  EXPECT_EQ(code.transformedCode.find("MOD("), std::string::npos);
  EXPECT_NE(code.transformedCode.find("col += 1;"), std::string::npos);
  EXPECT_NE(code.transformedCode.find("row += 1;"), std::string::npos);
  EXPECT_NE(code.transformedCode.find("colBase += 1;"), std::string::npos);
  // The copy keeps its repeat dimension.
  EXPECT_NE(code.transformedCode.find("int Old_sub[4][1][3]"),
            std::string::npos);
}

TEST(OptimizedTemplate, RejectsSingleAssignmentVariant) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  int oldIdx = dr::kernels::oldAccessIndex();
  auto m = dr::analytic::analyzePair(p.nests[0], p.nests[0].body[oldIdx], 3);
  dr::codegen::TemplateSpec spec;
  spec.singleAssignment = true;
  EXPECT_THROW(dr::codegen::generateOptimizedTemplate(p, 0, oldIdx, m, spec),
               dr::support::ContractViolation);
}

}  // namespace

namespace {

TEST(Strength, DecrementalLoopDelta) {
  dr::loopir::LoopNest nest;
  nest.loops = {dr::loopir::Loop{"j", 20, 0, -4}};  // 20,16,...,0
  auto e = AddrExpr::mul({AddrExpr::constant(3), AddrExpr::iter(0)});
  auto plan = makeInductionPlan(e, nest, 0);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->step, -12);  // 3 * (-4)
  EXPECT_EQ(verifyInductionPlan(e, nest, *plan), 0);
}

TEST(Strength, InitUsesOuterIterators) {
  auto nest = twoLoops(6, 8);
  // addr = 10*j + k: along k, the init is 10*j (outer-dependent).
  auto e = AddrExpr::add(
      {AddrExpr::mul({AddrExpr::constant(10), AddrExpr::iter(0)}),
       AddrExpr::iter(1)});
  auto plan = makeInductionPlan(e, nest, 1);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->init->maxIterator(), 0);
  EXPECT_EQ(plan->init->evaluate({4}), 40);
  EXPECT_EQ(verifyInductionPlan(e, nest, *plan), 0);
}

}  // namespace
