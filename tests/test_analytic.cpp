// Unit tests for the analytical model itself: reuse-vector normalization
// (eqs. (5)-(8)), the rank(B) classification (eq. (9)), the maximum-reuse
// formulas (eqs. (12)-(15)) including the paper's motion-estimation closed
// forms (Section 6.3), partial reuse and bypass (eqs. (16)-(22)), and the
// region model of Fig. 7.

#include <gtest/gtest.h>

#include "analytic/curve.h"
#include "analytic/pair_analysis.h"
#include "analytic/partial.h"
#include "analytic/regions.h"
#include "analytic/reuse_vector.h"
#include "helpers.h"
#include "kernels/motion_estimation.h"
#include "support/contracts.h"

namespace {

using namespace dr::analytic;
using dr::support::i64;
using dr::support::Rational;
using dr::test::DimCoeffs;
using dr::test::PairBox;

TEST(ReuseVectorTest, GcdNormalization) {
  ReuseVector v = normalizeVector(2, 4);
  EXPECT_EQ(v.bprime, 1);
  EXPECT_EQ(v.cprime, 2);
  EXPECT_FALSE(v.flippedK);
  v = normalizeVector(6, 9);
  EXPECT_EQ(v.bprime, 2);
  EXPECT_EQ(v.cprime, 3);
}

TEST(ReuseVectorTest, FootnoteOneCases) {
  // Paper footnote 1: b=0, c>0 -> b'=0, c'=1.
  ReuseVector v = normalizeVector(0, 5);
  EXPECT_EQ(v.bprime, 0);
  EXPECT_EQ(v.cprime, 1);
  // Symmetric: b>0, c=0 -> b'=1, c'=0.
  v = normalizeVector(7, 0);
  EXPECT_EQ(v.bprime, 1);
  EXPECT_EQ(v.cprime, 0);
}

TEST(ReuseVectorTest, SignHandling) {
  // Same sign (both negative): plain negation, no flip.
  ReuseVector v = normalizeVector(-2, -4);
  EXPECT_EQ(v.bprime, 1);
  EXPECT_EQ(v.cprime, 2);
  EXPECT_FALSE(v.flippedK);
  // Opposite signs: the k axis flips.
  v = normalizeVector(3, -6);
  EXPECT_EQ(v.bprime, 1);
  EXPECT_EQ(v.cprime, 2);
  EXPECT_TRUE(v.flippedK);
  v = normalizeVector(-3, 6);
  EXPECT_TRUE(v.flippedK);
  EXPECT_THROW(normalizeVector(0, 0), dr::support::ContractViolation);
}

TEST(Classify, RankTrichotomy) {
  EXPECT_EQ(classifyPair({{0, 0}, {0, 0}}).kind, ReuseKind::Scalar);
  EXPECT_EQ(classifyPair({{1, 0}, {0, 1}}).kind, ReuseKind::None);
  ReuseClass c = classifyPair({{2, 4}, {1, 2}});
  EXPECT_EQ(c.kind, ReuseKind::Vector);
  EXPECT_EQ(c.vec.bprime, 1);
  EXPECT_EQ(c.vec.cprime, 2);
}

TEST(Classify, ProportionalWithNegation) {
  // Rows (1,1) and (-2,-2) are proportional: rank 1, same vector.
  ReuseClass c = classifyPair({{1, 1}, {-2, -2}});
  EXPECT_EQ(c.kind, ReuseKind::Vector);
  EXPECT_EQ(c.vec.bprime, 1);
  EXPECT_EQ(c.vec.cprime, 1);
  EXPECT_FALSE(c.vec.flippedK);
}

TEST(Classify, MotionEstimationPairs) {
  // Paper Section 6.3 verbatim: (i5,i6) -> rank 2; (i4,..,i6) -> rank 1
  // with b'=1, c'=1.
  EXPECT_EQ(classifyPair({{1, 0}, {0, 1}}).kind, ReuseKind::None);
  ReuseClass c = classifyPair({{0, 0}, {1, 1}});
  EXPECT_EQ(c.kind, ReuseKind::Vector);
  EXPECT_EQ(c.vec.bprime, 1);
  EXPECT_EQ(c.vec.cprime, 1);
}

TEST(Classify, ZeroRowsIgnored) {
  ReuseClass c = classifyPair({{0, 0}, {0, 3}});
  EXPECT_EQ(c.kind, ReuseKind::Vector);
  EXPECT_EQ(c.vec.bprime, 0);
  EXPECT_EQ(c.vec.cprime, 1);
}

TEST(MaxReuseFormulas, SimpleWindow) {
  // A[j + k], j in [0,9], k in [0,4]: b'=c'=1, C_tot=50,
  // C_R=(10-1)*(5-1)=36, F=50/14, A=1*(5-1)=4.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_TRUE(m.hasReuse);
  EXPECT_TRUE(m.exact);
  EXPECT_EQ(m.FRmax, Rational(50, 14));
  EXPECT_EQ(m.AMax, 4);
  EXPECT_EQ(m.CtotPerOuter, 50);
  EXPECT_EQ(m.missesPerOuter, 14);
  EXPECT_EQ(m.outerIterations, 1);
}

TEST(MaxReuseFormulas, BZeroIsRowReuse) {
  // A[k]: reused across every j iteration; A = kRANGE.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 0, 1);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_TRUE(m.hasReuse);
  EXPECT_EQ(m.FRmax, Rational(10));
  EXPECT_EQ(m.AMax, 5);
}

TEST(MaxReuseFormulas, CZeroIsSingleRegister) {
  // A[j]: each element re-read within one j iteration; one register.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 0);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_TRUE(m.hasReuse);
  EXPECT_EQ(m.FRmax, Rational(5));
  EXPECT_EQ(m.AMax, 1);
}

TEST(MaxReuseFormulas, ScalarFootnotes) {
  // Paper footnotes 2 and 3: b=c=0 -> F = jR*kR, A = 1.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 0, 0, 3);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_TRUE(m.hasReuse);
  EXPECT_EQ(m.cls.kind, ReuseKind::Scalar);
  EXPECT_EQ(m.FRmax, Rational(50));
  EXPECT_EQ(m.AMax, 1);
}

TEST(MaxReuseFormulas, NoReuseWhenVectorExceedsBox) {
  // c' = 12 > jRANGE: the dependency does not fit (Section 6 condition).
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 12);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_FALSE(m.hasReuse);
}

TEST(MaxReuseFormulas, RankTwoNoReuse) {
  auto p = dr::test::genericDoubleLoop(
      {0, 9, 0, 4}, std::vector<DimCoeffs>{{1, 0, 0}, {0, 1, 0}});
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_EQ(m.cls.kind, ReuseKind::None);
  EXPECT_FALSE(m.hasReuse);
  EXPECT_EQ(m.FRmax, Rational(1));
}

TEST(MaxReuseFormulas, MotionEstimationClosedForms) {
  // Section 6.3 verbatim:
  //   F_RMax = (2m*n) / ((2m*n) - (2m-1)(n-1)),  A_Max = n * 1 * (n-1).
  dr::kernels::MotionEstimationParams mp;  // H=144 W=176 n=m=8
  auto p = dr::kernels::motionEstimation(mp);
  const auto& nest = p.nests[0];
  const auto& oldAcc = nest.body[dr::kernels::oldAccessIndex()];

  // Pair (i5, i6): rank 2, no reuse.
  MaxReuse inner = analyzePair(nest, oldAcc, 4);
  EXPECT_EQ(inner.cls.kind, ReuseKind::None);

  // Pair (i4, .., i6): b'=c'=1, repeat over i5.
  MaxReuse outer = analyzePair(nest, oldAcc, 3);
  EXPECT_TRUE(outer.hasReuse);
  EXPECT_TRUE(outer.exact);
  EXPECT_EQ(outer.cls.vec.bprime, 1);
  EXPECT_EQ(outer.cls.vec.cprime, 1);
  EXPECT_EQ(outer.sizeRepeat, 8);   // range of loop i5
  EXPECT_EQ(outer.reuseRepeat, 1);
  EXPECT_EQ(outer.FRmax, Rational(16 * 8, 16 * 8 - 15 * 7));  // 128/23
  EXPECT_EQ(outer.AMax, 8 * 1 * 7);                           // n*(n-1) = 56
  EXPECT_EQ(outer.outerIterations, 18 * 22 * 16);
  EXPECT_EQ(outer.CtotTotal(), 18LL * 22 * 16 * 16 * 8 * 8);
}

TEST(MaxReuseFormulas, ReuseRepeatMultipliesFactor) {
  // Intermediate loop the access ignores: same elements re-read every r.
  auto p = dr::test::tripleLoopWithIntermediate({0, 9, 0, 4}, 6, 1, 1,
                                                /*dependsOnR=*/false);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_TRUE(m.hasReuse);
  EXPECT_EQ(m.reuseRepeat, 6);
  EXPECT_EQ(m.sizeRepeat, 1);
  EXPECT_EQ(m.FRmax, Rational(50 * 6, 14));
  // The whole current row must stay resident across the repeated r
  // iterations: c'*(kR-b') + b' = 5 (not the adjacent-pair bound 4).
  EXPECT_EQ(m.AMax, 5);
}

TEST(MaxReuseFormulas, RequiresNormalizedNest) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  p.nests[0].loops[0].step = 2;
  EXPECT_THROW(analyzePair(p.nests[0], p.nests[0].body[0], 0),
               dr::support::ContractViolation);
}

TEST(MaxReuseFormulas, ExactnessFlag) {
  // Intermediate loop and pair driving the same dimension: beyond the
  // paper's model, flagged approximate.
  dr::loopir::Program p;
  int sig = dr::loopir::addSignal(p, "A", {100}, 8);
  dr::loopir::LoopNest nest;
  nest.loops = {dr::loopir::Loop{"j", 0, 5, 1}, dr::loopir::Loop{"r", 0, 3, 1},
                dr::loopir::Loop{"k", 0, 5, 1}};
  dr::loopir::ArrayAccess acc;
  acc.signal = sig;
  acc.kind = dr::loopir::AccessKind::Read;
  dr::loopir::AffineExpr e;
  e.setCoeff(0, 1);
  e.setCoeff(1, 2);  // r shares the single dimension with the pair
  e.setCoeff(2, 1);
  acc.indices = {e};
  nest.body.push_back(acc);
  p.nests.push_back(nest);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_FALSE(m.exact);
}

TEST(Partial, GammaRangeAndPoints) {
  // b'=1, c'=1, kR=5: gamma in [1, 3].
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  GammaRange range = gammaRange(m);
  EXPECT_EQ(range.lo, 1);
  EXPECT_EQ(range.hi, 3);

  PartialPoint pt = partialPoint(m, 2, /*bypass=*/false);
  // eq. (17): C_R = 2*(10-1) = 18; eq. (16): F = 50/32; eq. (18): A = 3.
  EXPECT_EQ(pt.CRPerOuter, 18);
  EXPECT_EQ(pt.FR, Rational(50, 32));
  EXPECT_EQ(pt.A, 3);
  EXPECT_EQ(pt.CtotBypassPerOuter, 0);

  PartialPoint bp = partialPoint(m, 2, /*bypass=*/true);
  // eq. (20): C'_tot = (2+1)*10 = 30; eq. (19): F' = 30/12; eq. (22): A=2.
  EXPECT_EQ(bp.CtotCopyPerOuter, 30);
  EXPECT_EQ(bp.CtotBypassPerOuter, 20);
  EXPECT_EQ(bp.FR, Rational(30, 12));
  EXPECT_EQ(bp.A, 2);
  EXPECT_GT(bp.FR, pt.FR);  // bypass always improves the copy's F_R
}

TEST(Partial, GammaBoundsEnforced) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  EXPECT_THROW(partialPoint(m, 0, false), dr::support::ContractViolation);
  EXPECT_THROW(partialPoint(m, 4, false), dr::support::ContractViolation);
}

TEST(Partial, ConnectsToMaxReuse) {
  // At gamma = kR - b' (one past the partial range) the counts equal the
  // maximum-reuse point; the largest allowed gamma stays strictly below.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 6}, 2, 3);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  ASSERT_TRUE(m.hasReuse);
  GammaRange range = gammaRange(m);
  PartialPoint last = partialPoint(m, range.hi, false);
  EXPECT_LT(last.CRPerOuter, m.CRPerOuter);
  EXPECT_LT(last.FR, m.FRmax);
  EXPECT_LE(last.A, m.AMax + 1);
}

TEST(Partial, MotionEstimationClosedForms) {
  // Section 6.3: F_R(g) = 2m*n / (2m*n - g*(2m-1)), A(g) = n*g + 1.
  auto p = dr::kernels::motionEstimation({});
  MaxReuse m = analyzePair(p.nests[0],
                           p.nests[0].body[dr::kernels::oldAccessIndex()], 3);
  for (i64 g = 1; g <= 6; ++g) {
    PartialPoint pt = partialPoint(m, g, false);
    EXPECT_EQ(pt.FR, Rational(128, 128 - g * 15)) << "gamma " << g;
    EXPECT_EQ(pt.A, 8 * g + 1) << "gamma " << g;
    PartialPoint bp = partialPoint(m, g, true);
    EXPECT_EQ(bp.A, 8 * g) << "gamma " << g;
    EXPECT_EQ(bp.FR, Rational((g + 1) * 16, (g + 1) * 16 - g * 15));
  }
}

TEST(Partial, CurveGeneration) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 8}, 1, 1);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  auto pts = partialCurve(m, 1, true);
  EXPECT_EQ(pts.size(), 2u * 7u);  // gamma in [1,7], two flavours each
  auto noBypass = partialCurve(m, 2, false);
  EXPECT_EQ(noBypass.size(), 4u);  // gamma 1,3,5,7
}

TEST(Regions, MembershipMatchesDefinition) {
  RegionParams rp;
  rp.bprime = 1;
  rp.cprime = 2;
  rp.jL = 0;
  rp.jU = 9;
  rp.kL = 0;
  rp.kU = 6;
  // Steady-state j.
  i64 j = 5, k = 3;
  EXPECT_EQ(regionOf(rp, j, k, j, k), 4);
  EXPECT_EQ(regionOf(rp, j, k, j, k + 1), 2);   // future k, current j
  EXPECT_EQ(regionOf(rp, j, k, j, k - 1), 3);   // past k, current j
  EXPECT_EQ(regionOf(rp, j, k, j - 1, 2), 1);   // previous j iteration
  EXPECT_EQ(regionOf(rp, j, k, j - 2, 2), 0);   // too old (c'-1 = 1 back)
  EXPECT_EQ(regionOf(rp, j, k, j - 1, 0), 0);   // k below kL + b'
}

TEST(Regions, SteadyStateTotalEqualsAMax) {
  RegionParams rp;
  rp.bprime = 2;
  rp.cprime = 3;
  rp.jL = 0;
  rp.jU = 20;
  rp.kL = 0;
  rp.kU = 10;
  // Paper: the maximum of the occupancy equals c'*(kRANGE - b').
  EXPECT_EQ(maxOccupancy(rp), 3 * (11 - 2));
  // At steady state and k = kL, regions II+IV peak (Fig. 7 shape).
  RegionSizes s = regionSizesAt(rp, 10, 0);
  EXPECT_EQ(s.total(), 3 * (11 - 2));
}

TEST(Regions, FirstAccessDomain) {
  RegionParams rp;
  rp.bprime = 1;
  rp.cprime = 2;
  rp.jL = 0;
  rp.jU = 9;
  rp.kL = 0;
  rp.kU = 6;
  // Gray zone of Fig. 6: k in [kU-b'+1, kU] or j in [jL, jL+c'-1].
  EXPECT_TRUE(isFirstAccess(rp, 0, 3));
  EXPECT_TRUE(isFirstAccess(rp, 1, 3));
  EXPECT_TRUE(isFirstAccess(rp, 5, 6));
  EXPECT_FALSE(isFirstAccess(rp, 5, 5));
  // Count over the whole space must equal C_tot - C_R.
  i64 firsts = 0;
  for (i64 j = rp.jL; j <= rp.jU; ++j)
    for (i64 k = rp.kL; k <= rp.kU; ++k)
      if (isFirstAccess(rp, j, k)) ++firsts;
  EXPECT_EQ(firsts, 10 * 7 - (10 - 2) * (7 - 1));
}

TEST(AnalyticCurve, PointsSortedAndLabelled) {
  auto p = dr::kernels::motionEstimation({});
  AnalyticCurveOptions opts;
  auto pts = analyticReusePoints(p.nests[0],
                                 p.nests[0].body[dr::kernels::oldAccessIndex()],
                                 opts);
  ASSERT_FALSE(pts.empty());
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LE(pts[i - 1].size, pts[i].size);
  // The maximum-reuse point of level 3 must be present with A = 56.
  bool found = false;
  for (const auto& pt : pts)
    if (pt.level == 3 && pt.gamma == -1 && pt.size == 56) found = true;
  EXPECT_TRUE(found);
}

TEST(AnalyticCurve, PartialPointCap) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 200}, 1, 1);
  AnalyticCurveOptions opts;
  opts.maxPartialPointsPerLevel = 10;
  auto pts = analyticReusePoints(p.nests[0], p.nests[0].body[0], opts);
  std::size_t partials = 0;
  for (const auto& pt : pts)
    if (pt.gamma >= 0 && !pt.bypass) ++partials;
  EXPECT_LE(partials, 10u);
}

}  // namespace

// ---------------------------------------------------------------------------
// Decremental loops (paper Section 5.1: "Analogous formulas can be
// derived for decremental loops"): normalization first, then the standard
// model; the counts must match the incremental twin.

#include "loopir/normalize.h"

namespace {

TEST(Decremental, NormalizedAnalysisMatchesIncrementalTwin) {
  using dr::test::PairBox;
  auto inc = dr::test::genericDoubleLoop(PairBox{0, 9, 0, 4}, 1, 1);

  auto dec = inc;
  dec.nests[0].loops[1] = dr::loopir::Loop{"k", 4, 0, -1};
  auto norm = dr::loopir::normalized(dec);

  MaxReuse a = analyzePair(inc.nests[0], inc.nests[0].body[0], 0);
  MaxReuse b = analyzePair(norm.nests[0], norm.nests[0].body[0], 0);
  ASSERT_TRUE(a.hasReuse);
  ASSERT_TRUE(b.hasReuse);
  // The decremental twin flips the k axis: same primitive vector sizes,
  // flipped geometry, identical reuse factor, A_Max grows by b'.
  EXPECT_EQ(b.cls.vec.bprime, a.cls.vec.bprime);
  EXPECT_EQ(b.cls.vec.cprime, a.cls.vec.cprime);
  EXPECT_TRUE(b.cls.vec.flippedK);
  EXPECT_EQ(b.FRmax, a.FRmax);
  EXPECT_EQ(b.missesPerOuter, a.missesPerOuter);
  EXPECT_EQ(b.AMax, a.AMax + a.cls.vec.bprime);
}

TEST(Decremental, StridedDecrementalViaNormalization) {
  auto p = dr::test::genericDoubleLoop(dr::test::PairBox{0, 9, 0, 9}, 1, 1);
  p.nests[0].loops[1] = dr::loopir::Loop{"k", 9, 0, -3};  // k = 9,6,3,0
  auto norm = dr::loopir::normalized(p);
  MaxReuse m = analyzePair(norm.nests[0], norm.nests[0].body[0], 0);
  // Index becomes j - 3k' + 9: b'=1, c'=3 flipped; reuse needs jR > 3.
  EXPECT_TRUE(m.hasReuse);
  EXPECT_EQ(m.cls.vec.cprime, 3);
  EXPECT_EQ(m.cls.vec.bprime, 1);
}

}  // namespace
