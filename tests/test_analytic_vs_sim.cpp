// Property tests pinning the paper's central claim: the analytical model
// (Sections 5-6) agrees with Belady-optimal simulation of the real access
// trace. Parameterized sweeps over coefficients, signs and box shapes
// check, for every configuration:
//   * C_tot - C_R equals the number of distinct elements (eqs. (13)-(14)),
//   * OPT at capacity A_Max reaches exactly the compulsory miss count,
//     i.e. the simulated reuse factor equals F_RMax (eq. (12) vs [3]),
//   * partial-reuse points are feasible: OPT at capacity A(gamma) misses
//     no more than the analytic C_j (eqs. (16)-(18) are achievable),
//   * the region model's occupancy bound matches OPT's saturation size.

#include <gtest/gtest.h>

#include <tuple>

#include "analytic/pair_analysis.h"
#include "analytic/partial.h"
#include "helpers.h"
#include "kernels/motion_estimation.h"
#include "simcore/buffer_sim.h"
#include "simcore/reuse_curve.h"
#include "trace/walker.h"

namespace {

using namespace dr::analytic;
using dr::simcore::simulateOpt;
using dr::support::i64;
using dr::test::PairBox;
using dr::trace::AddressMap;
using dr::trace::Trace;

struct Config {
  i64 b, c, jR, kR;
};

class AnalyticVsOpt : public ::testing::TestWithParam<Config> {};

TEST_P(AnalyticVsOpt, MaxReuseMatchesBelady) {
  const Config cfg = GetParam();
  PairBox box{0, cfg.jR - 1, 0, cfg.kR - 1};
  auto p = dr::test::genericDoubleLoop(box, cfg.b, cfg.c);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);

  AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  ASSERT_EQ(t.length(), m.CtotPerOuter);

  // Eqs. (13)-(14): first accesses == distinct elements.
  EXPECT_EQ(t.distinctCount(), m.missesPerOuter)
      << "b=" << cfg.b << " c=" << cfg.c;

  if (!m.hasReuse) {
    if (m.cls.kind == ReuseKind::None) {
      EXPECT_EQ(t.distinctCount(), t.length());
    }
    return;
  }

  // Eq. (12) vs Belady: capacity A_Max suffices for compulsory-only
  // misses, so the simulated reuse factor equals F_RMax exactly.
  auto sim = simulateOpt(t, m.AMax);
  EXPECT_EQ(sim.misses, m.missesPerOuter)
      << "b=" << cfg.b << " c=" << cfg.c << " AMax=" << m.AMax;
  EXPECT_EQ(sim.reuseFactorExact(), m.FRmax);
}

TEST_P(AnalyticVsOpt, PartialPointsFeasible) {
  const Config cfg = GetParam();
  PairBox box{0, cfg.jR - 1, 0, cfg.kR - 1};
  auto p = dr::test::genericDoubleLoop(box, cfg.b, cfg.c);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  GammaRange range = gammaRange(m);
  if (range.empty()) return;

  AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  auto nextUse = dr::simcore::computeNextUse(t);
  for (i64 g = range.lo; g <= range.hi; ++g) {
    PartialPoint pt = partialPoint(m, g, false);
    // OPT with the same buffer size can only do better (fewer fills).
    auto sim = simulateOpt(t, pt.A, nextUse);
    EXPECT_LE(sim.misses, pt.missesPerOuter)
        << "b=" << cfg.b << " c=" << cfg.c << " gamma=" << g;
    // And the analytic point can never beat maximum reuse.
    EXPECT_GE(pt.missesPerOuter, m.missesPerOuter);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoefficientSweep, AnalyticVsOpt,
    ::testing::Values(
        // canonical b>=0, c>0 shapes
        Config{1, 1, 10, 5}, Config{1, 1, 5, 10}, Config{1, 2, 10, 7},
        Config{2, 1, 10, 7}, Config{2, 3, 12, 11}, Config{3, 2, 12, 11},
        Config{2, 4, 9, 13}, Config{4, 2, 9, 13}, Config{1, 3, 20, 9},
        Config{5, 1, 8, 16}, Config{1, 5, 16, 8}, Config{3, 3, 10, 10},
        // footnote cases: b=0 / c=0 / both 0
        Config{0, 1, 10, 5}, Config{0, 3, 10, 6}, Config{1, 0, 10, 5},
        Config{4, 0, 7, 9}, Config{0, 0, 10, 5},
        // negative coefficients: same-sign and flipped-k geometries
        Config{-1, -1, 10, 5}, Config{-2, -3, 12, 11}, Config{1, -1, 10, 5},
        Config{-1, 1, 10, 5}, Config{2, -3, 12, 11}, Config{-3, 2, 12, 11},
        Config{0, -2, 10, 6}, Config{-4, 0, 7, 9},
        // boundary regimes: kRANGE < 2*b', jRANGE < 2*c'
        Config{3, 1, 10, 4}, Config{1, 3, 4, 10}, Config{3, 1, 10, 5},
        Config{5, 2, 6, 7}, Config{2, 5, 7, 6},
        // no-reuse regimes: dependency does not fit the box
        Config{1, 12, 10, 5}, Config{12, 1, 5, 10}, Config{7, 9, 6, 6}));

/// Multi-dimensional accesses: rank(B) decides everything (Section 5.3).
struct MultiDimConfig {
  dr::test::DimCoeffs d0, d1;
  i64 jR, kR;
};

class MultiDimVsOpt : public ::testing::TestWithParam<MultiDimConfig> {};

TEST_P(MultiDimVsOpt, CountsMatchSimulation) {
  const MultiDimConfig cfg = GetParam();
  PairBox box{0, cfg.jR - 1, 0, cfg.kR - 1};
  auto p = dr::test::genericDoubleLoop(
      box, std::vector<dr::test::DimCoeffs>{cfg.d0, cfg.d1});
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);

  AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  EXPECT_EQ(t.distinctCount(), m.missesPerOuter);
  if (m.hasReuse) {
    auto sim = simulateOpt(t, m.AMax);
    EXPECT_EQ(sim.misses, m.missesPerOuter);
    EXPECT_EQ(sim.reuseFactorExact(), m.FRmax);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MultiDimVsOpt,
    ::testing::Values(
        // rank 1: proportional rows
        MultiDimConfig{{1, 1, 0}, {2, 2, 0}, 10, 6},
        MultiDimConfig{{1, 2, 0}, {2, 4, 3}, 12, 9},
        MultiDimConfig{{0, 0, 5}, {1, 1, 0}, 10, 6},
        MultiDimConfig{{1, -1, 0}, {-2, 2, 0}, 10, 6},
        // rank 2: no reuse
        MultiDimConfig{{1, 0, 0}, {0, 1, 0}, 8, 8},
        MultiDimConfig{{1, 1, 0}, {1, -1, 0}, 8, 8},
        // rank 0: scalar
        MultiDimConfig{{0, 0, 2}, {0, 0, 3}, 8, 8}));

/// The Section 6.3 repeat factors against simulation.
class RepeatFactorVsOpt
    : public ::testing::TestWithParam<std::tuple<i64, bool>> {};

TEST_P(RepeatFactorVsOpt, TripleLoopMatches) {
  auto [rTrip, dependsOnR] = GetParam();
  auto p = dr::test::tripleLoopWithIntermediate({0, 9, 0, 5}, rTrip, 1, 1,
                                                dependsOnR);
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
  ASSERT_TRUE(m.hasReuse);
  ASSERT_TRUE(m.exact);

  AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  EXPECT_EQ(t.length(), m.CtotPerOuter);
  EXPECT_EQ(t.distinctCount(), m.missesPerOuter);
  auto sim = simulateOpt(t, m.AMax);
  EXPECT_EQ(sim.misses, m.missesPerOuter);
  EXPECT_EQ(sim.reuseFactorExact(), m.FRmax);
}

INSTANTIATE_TEST_SUITE_P(Repeats, RepeatFactorVsOpt,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Bool()));

TEST(MotionEstimationVsOpt, InnerNestMatchesAnalytics) {
  // Scaled-down ME (one outer iteration's inner nest): the analytic
  // (i4..i6) point must sit exactly on the simulated curve.
  dr::kernels::MotionEstimationParams mp;
  mp.H = 16;
  mp.W = 16;
  mp.n = 4;
  mp.m = 2;
  auto p = dr::kernels::motionEstimation(mp);
  const auto& nest = p.nests[0];
  const auto& oldAcc = nest.body[dr::kernels::oldAccessIndex()];
  MaxReuse m = analyzePair(nest, oldAcc, 3);
  ASSERT_TRUE(m.hasReuse);

  // Trace of the inner (i4,i5,i6) nest for one (i1,i2,i3) iteration:
  // restrict the outer loops to a single steady iteration.
  auto inner = p;
  inner.nests[0].loops[0].end = inner.nests[0].loops[0].begin = 1;
  inner.nests[0].loops[1].end = inner.nests[0].loops[1].begin = 1;
  inner.nests[0].loops[2].end = inner.nests[0].loops[2].begin = 0;
  AddressMap map(inner);
  Trace t = dr::trace::readTrace(inner, map, inner.findSignal("Old"));
  ASSERT_EQ(t.length(), m.CtotPerOuter);
  EXPECT_EQ(t.distinctCount(), m.missesPerOuter);
  auto sim = simulateOpt(t, m.AMax);
  EXPECT_EQ(sim.misses, m.missesPerOuter);
  EXPECT_EQ(sim.reuseFactorExact(), m.FRmax);
}

TEST(SaturationVsAMax, OptNeedsNoMoreThanAMax) {
  // OPT's saturation size never exceeds the analytic A_Max (the template
  // policy is one feasible policy; Belady may do better, footnote 4).
  for (const Config cfg : {Config{1, 1, 10, 6}, Config{2, 3, 12, 11},
                           Config{1, 2, 9, 7}, Config{0, 1, 10, 5}}) {
    PairBox box{0, cfg.jR - 1, 0, cfg.kR - 1};
    auto p = dr::test::genericDoubleLoop(box, cfg.b, cfg.c);
    MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
    ASSERT_TRUE(m.hasReuse);
    AddressMap map(p);
    Trace t = dr::trace::readTrace(p, map, 0);
    i64 sat = dr::simcore::optSaturationSize(t);
    EXPECT_LE(sat, m.AMax) << "b=" << cfg.b << " c=" << cfg.c;
  }
}

}  // namespace
