// Budgeted exploration: RunBudget semantics, cooperative truncation in
// the streaming pipeline, and the explorer's graceful-degradation ladder
// (exact stream -> certified fold -> approximate fold -> analytic-only),
// including the Fidelity tag every emitted curve point carries.

#include <gtest/gtest.h>

#include <chrono>

#include "explorer/explorer.h"
#include "kernels/motion_estimation.h"
#include "simcore/folded_curve.h"
#include "support/budget.h"
#include "trace/period.h"
#include "trace/stream.h"
#include "trace/walker.h"

namespace {

using dr::support::BudgetTrip;
using dr::support::i64;
using dr::support::RunBudget;
using dr::support::StatusCode;

TEST(RunBudget, UnlimitedNeverTrips) {
  RunBudget b;
  b.chargeEvents(1 << 20);
  b.noteResidentBytes(i64{1} << 40);
  EXPECT_EQ(b.state(), BudgetTrip::None);
  EXPECT_FALSE(b.tripped());
  EXPECT_TRUE(b.toStatus().isOk());
}

TEST(RunBudget, EventCeilingLatchesFirstTrip) {
  RunBudget b;
  b.setMaxEvents(100);
  b.chargeEvents(100);
  EXPECT_FALSE(b.tripped());  // ceiling is inclusive
  b.chargeEvents(1);
  EXPECT_EQ(b.state(), BudgetTrip::Events);
  EXPECT_EQ(b.eventsCharged(), 101);
  // Latched: a later (would-be) memory trip cannot displace it.
  b.setMaxResidentBytes(1);
  b.noteResidentBytes(1 << 20);
  EXPECT_EQ(b.state(), BudgetTrip::Events);
  EXPECT_EQ(b.toStatus().code(), StatusCode::BudgetExceeded);
}

TEST(RunBudget, MemoryCeilingTracksPeak) {
  RunBudget b;
  b.setMaxResidentBytes(1000);
  b.chargeBytes(600);
  b.releaseBytes(600);
  b.chargeBytes(900);
  EXPECT_FALSE(b.tripped());
  EXPECT_EQ(b.peakResidentBytes(), 900);
  b.chargeBytes(200);  // 1100 resident
  EXPECT_EQ(b.state(), BudgetTrip::Memory);
  // Releasing does not un-trip (the degradation decision stays stable).
  b.releaseBytes(1000);
  EXPECT_EQ(b.state(), BudgetTrip::Memory);
}

TEST(RunBudget, CancellationWinsAndMapsToStatus) {
  RunBudget b;
  b.cancel();
  EXPECT_TRUE(b.cancelRequested());
  EXPECT_EQ(b.state(), BudgetTrip::Cancelled);
  EXPECT_EQ(b.toStatus().code(), StatusCode::Cancelled);
}

TEST(RunBudget, ExpiredDeadlineTrips) {
  RunBudget b;
  b.setDeadline(std::chrono::milliseconds(0));
  EXPECT_EQ(b.state(), BudgetTrip::Deadline);
}

TEST(TraceCursor, BudgetRefusesChunksOnlyAtBoundaries) {
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  dr::trace::AddressMap map(p);
  dr::trace::TraceFilter filter;
  filter.signal = p.findSignal("Old");

  dr::trace::TraceCursor cursor(p, map, filter);
  const i64 total = cursor.length();
  ASSERT_GT(total, 4096);

  RunBudget b;
  b.setMaxEvents(4096);
  cursor.attachBudget(&b);
  std::vector<i64> chunk;
  i64 got = 0, lastChunk = 0;
  while ((lastChunk = cursor.nextChunk(chunk, 1024)) > 0) got += lastChunk;
  EXPECT_TRUE(cursor.truncated());
  EXPECT_LT(got, total);
  EXPECT_EQ(got, cursor.position());
  // Whole chunks only: everything handed out arrived before the trip.
  EXPECT_GE(got, 4096);  // the tripping chunk itself was completed
  EXPECT_EQ(b.state(), BudgetTrip::Events);

  // reset() clears the truncation; detaching restores full streaming.
  cursor.attachBudget(nullptr);
  cursor.reset();
  EXPECT_FALSE(cursor.truncated());
  got = 0;
  while ((lastChunk = cursor.nextChunk(chunk)) > 0) got += lastChunk;
  EXPECT_EQ(got, total);
}

// --- ladder rung 1: exact streaming --------------------------------------

TEST(Ladder, UntrippedRunTagsExactStream) {
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  EXPECT_EQ(ex.curveFidelity, dr::simcore::Fidelity::ExactStream);
  ASSERT_FALSE(ex.simulatedCurve.points.empty());
  for (const auto& pt : ex.simulatedCurve.points)
    EXPECT_EQ(pt.fidelity, dr::simcore::Fidelity::ExactStream);
  EXPECT_TRUE(ex.simulationStats.completed);
  EXPECT_EQ(ex.simulationStats.trippedBy, BudgetTrip::None);
}

// --- ladder rung 2: certified fold ---------------------------------------

TEST(Ladder, CertifiedFoldTagsExactFold) {
  // A pure linear scan: every chunk is the previous one shifted by 32,
  // with no inter-chunk reuse — the steady state certifies immediately.
  dr::trace::LoweredNest nest;
  nest.loops.push_back({0, 1, 64});
  nest.loops.push_back({0, 1, 32});
  dr::trace::LoweredAccess acc;
  acc.levelCoeff = {32, 1};
  nest.accesses.push_back(acc);

  const auto pd = dr::trace::detectPeriod({nest});
  ASSERT_TRUE(pd.found);

  dr::trace::TraceCursor cursor({nest});
  dr::simcore::FoldedStats stats;
  const auto hist = dr::simcore::foldedStackHistogram(
      cursor, pd, dr::simcore::Policy::Opt, &stats);
  ASSERT_TRUE(stats.folded);
  EXPECT_TRUE(stats.exact);
  EXPECT_TRUE(stats.completed);
  EXPECT_EQ(stats.fidelity, dr::simcore::Fidelity::ExactFold);
  EXPECT_EQ(hist.accesses, 64 * 32);
  EXPECT_EQ(hist.coldMisses, 64 * 32);  // all addresses distinct
}

// --- ladder rung 3: approximate fold after a budget trip ------------------

TEST(Ladder, BudgetTripAfterMeasuredChunkExtrapolates) {
  const auto p = dr::kernels::motionEstimation({});
  dr::trace::AddressMap map(p);
  dr::trace::TraceFilter filter;
  filter.signal = p.findSignal("Old");
  filter.nest = 0;
  filter.accessIndex = dr::kernels::oldAccessIndex();

  dr::trace::TraceCursor cursor(p, map, filter);
  const auto pd = dr::trace::detectPeriod(cursor.nests());
  ASSERT_TRUE(pd.found);

  // Enough for the warmup plus a few measured chunks, far short of the
  // 6.5M-event stream: the engine must extrapolate from the last chunk.
  RunBudget b;
  b.setMaxEvents(pd.warmup + 3 * pd.period);
  dr::simcore::FoldedCurveOptions opts;
  opts.budget = &b;
  dr::simcore::FoldedStats stats;
  const auto hist = dr::simcore::foldedStackHistogram(
      cursor, pd, dr::simcore::Policy::Opt, &stats, opts);

  EXPECT_TRUE(stats.completed);  // full-trace counts exist (extrapolated)
  EXPECT_TRUE(stats.folded);
  EXPECT_FALSE(stats.exact);
  EXPECT_EQ(stats.fidelity, dr::simcore::Fidelity::ApproxFold);
  EXPECT_EQ(stats.trippedBy, BudgetTrip::Events);
  EXPECT_EQ(hist.accesses, stats.totalEvents);
  EXPECT_LT(stats.simulatedEvents, stats.totalEvents);
}

// --- ladder rung 4: analytic-only fallback --------------------------------

TEST(Ladder, TightDeadlineFallsToAnalyticCurve) {
  const auto p = dr::kernels::motionEstimation({});
  RunBudget b;
  b.setDeadline(std::chrono::milliseconds(0));  // already expired

  dr::explorer::ExploreOptions opts;
  opts.budget = &b;
  // Completes without throwing even though no event was ever simulated.
  const auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"), opts);

  EXPECT_EQ(ex.curveFidelity, dr::simcore::Fidelity::Analytic);
  EXPECT_FALSE(ex.simulationStats.completed);
  EXPECT_EQ(ex.simulationStats.trippedBy, BudgetTrip::Deadline);
  ASSERT_FALSE(ex.simulatedCurve.points.empty());
  for (const auto& pt : ex.simulatedCurve.points)
    EXPECT_EQ(pt.fidelity, dr::simcore::Fidelity::Analytic);

  // Sorted by size, positive reuse everywhere.
  for (std::size_t i = 1; i < ex.simulatedCurve.points.size(); ++i)
    EXPECT_LT(ex.simulatedCurve.points[i - 1].size,
              ex.simulatedCurve.points[i].size);

  // The analytic rung reproduces the Fig. 4a knee positions: one point
  // inside each knee band of the pinned simulated curve
  // (test_folded_stream.cpp), topped by the full-frame point.
  const i64 bandLo[3] = {48, 150, 350};
  const i64 bandHi[3] = {72, 240, 680};
  for (int k = 0; k < 3; ++k) {
    bool found = false;
    for (const auto& pt : ex.simulatedCurve.points)
      if (pt.size >= bandLo[k] && pt.size <= bandHi[k]) found = true;
    EXPECT_TRUE(found) << "no analytic point in knee band " << k;
  }
  const auto& top = ex.simulatedCurve.points.back();
  EXPECT_EQ(top.size, ex.distinctElements);
  EXPECT_NEAR(top.reuseFactor, 213.64, 0.01);  // 6488064 / 30369
}

// --- checked facade -------------------------------------------------------

TEST(ExploreChecked, BadSignalIsInvalidInputNotAThrow) {
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  auto r = dr::explorer::exploreSignalChecked(p, 99);
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), StatusCode::InvalidInput);
}

TEST(ExploreChecked, ValidSignalReturnsExploration) {
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  auto r = dr::explorer::exploreSignalChecked(p, p.findSignal("Old"));
  ASSERT_TRUE(r.hasValue());
  EXPECT_EQ(r->curveFidelity, dr::simcore::Fidelity::ExactStream);
  EXPECT_GT(r->Ctot, 0);
}

TEST(OrderingSweep, TrippedBudgetLeavesDefaultsInsteadOfThrowing) {
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  RunBudget b;
  b.cancel();  // tripped before the sweep starts
  const auto results = dr::explorer::orderingSweep(
      p, p.findSignal("Old"), /*sizeBudget=*/256, /*fixedPrefix=*/2,
      /*validateTopK=*/2, &b);
  for (const auto& r : results) {
    EXPECT_FALSE(r.feasible);  // skipped slots keep caller defaults
    EXPECT_EQ(r.simMisses, -1);
  }
}

}  // namespace
