// Tests for the Fig. 8 code templates and the IR-level executor that
// verifies them: the generated policy must read exactly the values the
// original nest reads, with exactly the transfer counts the analytical
// model predicts (eqs. (12)-(22)).

#include <gtest/gtest.h>

#include "analytic/pair_analysis.h"
#include "analytic/partial.h"
#include "codegen/executor.h"
#include "codegen/templates.h"
#include "helpers.h"
#include "kernels/motion_estimation.h"
#include "support/contracts.h"
#include "trace/address_map.h"

namespace {

using namespace dr::codegen;
using dr::analytic::analyzePair;
using dr::analytic::GammaRange;
using dr::analytic::MaxReuse;
using dr::analytic::PartialPoint;
using dr::analytic::partialPoint;
using dr::support::i64;
using dr::test::PairBox;

MaxReuse analyzed(const dr::loopir::Program& p, int level = 0,
                  int access = 0) {
  return analyzePair(p.nests[0], p.nests[0].body[access], level);
}

TEST(Templates, MaxReuseTextShape) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  MaxReuse m = analyzed(p);
  GeneratedCode code = generateCopyTemplate(p, 0, 0, m);
  EXPECT_EQ(code.copyName, "A_sub");
  EXPECT_EQ(code.copyRows, 1);
  EXPECT_EQ(code.copyCols, 4);  // kRANGE - b'
  EXPECT_NE(code.originalCode.find("use(A[j + k]);"), std::string::npos);
  EXPECT_NE(code.transformedCode.find("int A_sub[1][4];"), std::string::npos);
  EXPECT_NE(code.transformedCode.find("#define MOD"), std::string::npos);
  // First-access condition: j < c' or k > kU - b'.
  EXPECT_NE(code.transformedCode.find("< 1 || "), std::string::npos);
  EXPECT_NE(code.transformedCode.find("use(A_sub"), std::string::npos);
}

TEST(Templates, PartialAndBypassVariants) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 7}, 1, 1);
  MaxReuse m = analyzed(p);
  TemplateSpec spec;
  spec.gamma = 3;
  GeneratedCode noBypass = generateCopyTemplate(p, 0, 0, m, spec);
  EXPECT_EQ(noBypass.copyCols, 3);
  EXPECT_NE(noBypass.transformedCode.find("A_sub_stream"),
            std::string::npos);  // the +1 slot of eq. (18)
  spec.bypass = true;
  GeneratedCode bypass = generateCopyTemplate(p, 0, 0, m, spec);
  EXPECT_NE(bypass.transformedCode.find("/* bypass */"), std::string::npos);
  EXPECT_EQ(bypass.transformedCode.find("A_sub_stream"), std::string::npos);
}

TEST(Templates, SingleAssignmentVariant) {
  // Section 6.1: the enlarged copy removes the modulo on k.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  MaxReuse m = analyzed(p);
  TemplateSpec spec;
  spec.singleAssignment = true;
  GeneratedCode code = generateCopyTemplate(p, 0, 0, m, spec);
  EXPECT_EQ(code.copyCols, ((10 - 1) / 1) * 1 + 5);  // ((jU-jL)/c')*b' + kR
  spec.gamma = 2;
  EXPECT_THROW(generateCopyTemplate(p, 0, 0, m, spec),
               dr::support::ContractViolation);
}

TEST(Templates, MotionEstimationRepeatDimension) {
  auto p = dr::kernels::motionEstimation({});
  MaxReuse m = analyzePair(p.nests[0],
                           p.nests[0].body[dr::kernels::oldAccessIndex()], 3);
  GeneratedCode code = generateCopyTemplate(
      p, 0, dr::kernels::oldAccessIndex(), m);
  // Copy carries the i5 repeat dimension: Old_sub[8][1][7].
  EXPECT_NE(code.transformedCode.find("int Old_sub[8][1][7];"),
            std::string::npos);
}

TEST(Templates, RejectsNonCanonical) {
  auto none = dr::test::genericDoubleLoop(
      {0, 5, 0, 5},
      std::vector<dr::test::DimCoeffs>{{1, 0, 0}, {0, 1, 0}});
  MaxReuse m = analyzed(none);
  EXPECT_THROW(generateCopyTemplate(none, 0, 0, m),
               dr::support::ContractViolation);
  auto flipped = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, -1);
  MaxReuse mf = analyzed(flipped);
  EXPECT_THROW(generateCopyTemplate(flipped, 0, 0, mf),
               dr::support::ContractViolation);
}

struct ExecCase {
  i64 b, c, jR, kR;
};

class ExecutorSweep : public ::testing::TestWithParam<ExecCase> {};

TEST_P(ExecutorSweep, MaxReuseCountsAndValues) {
  const ExecCase cfg = GetParam();
  auto p = dr::test::genericDoubleLoop({0, cfg.jR - 1, 0, cfg.kR - 1},
                                       cfg.b, cfg.c);
  MaxReuse m = analyzed(p);
  if (!m.hasReuse || m.cls.kind != dr::analytic::ReuseKind::Vector ||
      m.cls.vec.cprime < 1 || m.cls.vec.flippedK)
    GTEST_SKIP() << "non-canonical configuration";

  dr::trace::AddressMap map(p);
  ExecutorCounts counts = executeCopyTemplate(p, 0, 0, m, {}, map);
  EXPECT_TRUE(counts.valuesCorrect) << counts.firstError;
  EXPECT_EQ(counts.datapathReads, m.CtotPerOuter);
  EXPECT_EQ(counts.copyWrites, m.missesPerOuter);   // C_j, eq. (12)-(14)
  EXPECT_EQ(counts.copyReads, m.CtotPerOuter);      // everything via copy
  EXPECT_EQ(counts.backgroundReads, m.missesPerOuter);
  EXPECT_EQ(counts.bypassReads, 0);
  EXPECT_LE(counts.maxOccupancy, m.AMax);           // eq. (15) is an upper
  // In steady regimes the bound is tight.
  if (cfg.jR >= 2 * m.cls.vec.cprime && cfg.kR >= 2 * m.cls.vec.bprime) {
    EXPECT_EQ(counts.maxOccupancy, m.AMax);
  }
}

TEST_P(ExecutorSweep, PartialCountsAndValues) {
  const ExecCase cfg = GetParam();
  auto p = dr::test::genericDoubleLoop({0, cfg.jR - 1, 0, cfg.kR - 1},
                                       cfg.b, cfg.c);
  MaxReuse m = analyzed(p);
  if (!m.hasReuse || m.cls.kind != dr::analytic::ReuseKind::Vector ||
      m.cls.vec.cprime < 1 || m.cls.vec.flippedK)
    GTEST_SKIP() << "non-canonical configuration";
  GammaRange range = dr::analytic::gammaRange(m);
  if (range.empty()) GTEST_SKIP() << "no partial range";

  dr::trace::AddressMap map(p);
  for (i64 g : {range.lo, (range.lo + range.hi) / 2, range.hi}) {
    for (bool bypass : {false, true}) {
      PartialPoint pt = partialPoint(m, g, bypass);
      TemplateSpec spec;
      spec.gamma = g;
      spec.bypass = bypass;
      ExecutorCounts counts = executeCopyTemplate(p, 0, 0, m, spec, map);
      EXPECT_TRUE(counts.valuesCorrect) << counts.firstError;
      EXPECT_EQ(counts.copyWrites, pt.missesPerOuter)
          << "g=" << g << " bypass=" << bypass;
      EXPECT_EQ(counts.copyReads, pt.CtotCopyPerOuter);
      EXPECT_EQ(counts.bypassReads, pt.CtotBypassPerOuter);
      EXPECT_LE(counts.maxOccupancy, pt.A);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExecutorSweep,
    ::testing::Values(ExecCase{1, 1, 10, 5}, ExecCase{1, 1, 5, 10},
                      ExecCase{1, 2, 10, 7}, ExecCase{2, 1, 10, 7},
                      ExecCase{2, 3, 12, 11}, ExecCase{3, 2, 12, 11},
                      ExecCase{2, 4, 9, 13}, ExecCase{1, 3, 20, 9},
                      ExecCase{0, 1, 10, 5}, ExecCase{0, 3, 10, 9},
                      ExecCase{3, 1, 10, 5}, ExecCase{1, 1, 3, 3}));

TEST(Executor, MotionEstimationInnerLevel) {
  // The full ME kernel: the executor must reproduce the Section 6.3
  // totals over all outer iterations.
  dr::kernels::MotionEstimationParams mp;
  mp.H = 32;
  mp.W = 32;
  mp.n = 4;
  mp.m = 4;
  auto p = dr::kernels::motionEstimation(mp);
  int oldIdx = dr::kernels::oldAccessIndex();
  MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[oldIdx], 3);
  ASSERT_TRUE(m.hasReuse);

  dr::trace::AddressMap map(p);
  ExecutorCounts counts = executeCopyTemplate(p, 0, oldIdx, m, {}, map);
  EXPECT_TRUE(counts.valuesCorrect) << counts.firstError;
  EXPECT_EQ(counts.datapathReads, m.CtotTotal());
  EXPECT_EQ(counts.copyWrites, m.CjTotal());
  EXPECT_EQ(counts.maxOccupancy, m.AMax);
}

TEST(Executor, RejectsBadSpecs) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  MaxReuse m = analyzed(p);
  dr::trace::AddressMap map(p);
  TemplateSpec spec;
  spec.gamma = 99;
  EXPECT_THROW(executeCopyTemplate(p, 0, 0, m, spec, map),
               dr::support::ContractViolation);
}

}  // namespace

// ---------------------------------------------------------------------------
// Golden-file check: the exact Fig. 8 template text for a small motion
// estimation instance. Guards the emitter against silent regressions;
// update deliberately when the template format changes.

namespace {

TEST(Templates, MotionEstimationGolden) {
  auto p = dr::kernels::motionEstimation({16, 16, 4, 2});
  int oldIdx = dr::kernels::oldAccessIndex();
  auto m = analyzePair(p.nests[0], p.nests[0].body[oldIdx], 3);
  auto code = generateCopyTemplate(p, 0, oldIdx, m);
  const char* expected =
      R"(/* copy-candidate for Old[4*i1 + i3 + i5][4*i2 + i4 + i6]
   reuse dependency (c',-b') = (1,-1), pair loops (i4, i6) */
#define MOD(a, n) (((a) % (n) + (n)) % (n))
int Old_sub[4][1][3];

for (i1 = 0; i1 <= 3; i1++) {
  for (i2 = 0; i2 <= 3; i2++) {
    for (i3 = -2; i3 <= 1; i3++) {
      for (i4 = -2; i4 <= 1; i4++) {
        for (i5 = 0; i5 <= 3; i5++) {
          for (i6 = 0; i6 <= 3; i6++) {
            use(New[4*i1 + i5][4*i2 + i6]);
            if ((i4 - (-2)) < 1 || (i6 - (0)) > 2)
              Old_sub[i5 - (0)][MOD((i4 - (-2)), 1)][MOD((i6 - (0)) + ((i4 - (-2)) / 1) * 1, 3)] = Old[4*i1 + i3 + i5][4*i2 + i4 + i6];
            use(Old_sub[i5 - (0)][MOD((i4 - (-2)), 1)][MOD((i6 - (0)) + ((i4 - (-2)) / 1) * 1, 3)]);
          }
        }
      }
    }
  }
}
)";
  EXPECT_EQ(code.transformedCode, expected);
}

}  // namespace
