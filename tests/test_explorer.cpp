// End-to-end tests of the exploration facade: the full trace -> simulate
// -> analytic -> chains -> Pareto flow on the paper's test vehicles
// (scaled down so each test runs in milliseconds).

#include <gtest/gtest.h>

#include <cstdlib>

#include "explorer/explorer.h"
#include "kernels/conv2d.h"
#include "kernels/matmul.h"
#include "kernels/motion_estimation.h"
#include "kernels/susan.h"
#include "kernels/wavelet.h"
#include "support/contracts.h"

namespace {

using namespace dr::explorer;
using dr::support::i64;

TEST(Explorer, MotionEstimationEndToEnd) {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 32;
  mp.W = 32;
  mp.n = 4;
  mp.m = 4;
  auto p = dr::kernels::motionEstimation(mp);
  SignalExploration ex = exploreSignal(p, p.findSignal("Old"));

  EXPECT_EQ(ex.signalName, "Old");
  EXPECT_EQ(ex.Ctot, 8LL * 8 * 8 * 8 * 4 * 4);
  EXPECT_EQ(ex.distinctElements, 39LL * 39);  // (H+2m-1)^2

  // Analytic points exist and include the level-3 maximum (A = n*(n-1)).
  ASSERT_EQ(ex.accesses.size(), 1u);
  bool l3max = false;
  for (const auto& pt : ex.combinedPoints)
    if (pt.gamma == -1 && pt.size == 4 * 3) l3max = true;
  EXPECT_TRUE(l3max);

  // The simulated curve is monotone and contains the analytic sizes.
  ASSERT_FALSE(ex.simulatedCurve.points.empty());
  bool found = false;
  for (const auto& sp : ex.simulatedCurve.points)
    if (sp.size == 12) {
      found = true;
      // Analytic reuse factor must sit on (not above) the Belady curve.
      for (const auto& ap : ex.combinedPoints)
        if (ap.size == 12 && !ap.bypass) {
          EXPECT_LE(ap.FR, sp.reuseFactor + 1e-9);
        }
    }
  EXPECT_TRUE(found);

  // Working-set knees: one nest, levels 0..5, knee 0 = whole footprint.
  ASSERT_EQ(ex.kneesPerNest.size(), 1u);
  EXPECT_EQ(ex.kneesPerNest[0].size(), 6u);
  EXPECT_EQ(ex.kneesPerNest[0][0].workingSetMax, ex.distinctElements);
  EXPECT_EQ(ex.kneesPerNest[0][0].misses, ex.distinctElements);

  // Chains exist, all valid, Pareto front non-trivial and improving.
  ASSERT_GT(ex.chains.size(), 1u);
  for (const auto& d : ex.chains) EXPECT_TRUE(d.chain.validate().empty());
  ASSERT_GE(ex.pareto.size(), 2u);
  EXPECT_LT(ex.pareto.back().cost.normalizedPower, 0.7)
      << "hierarchy must cut power substantially";
  for (std::size_t i = 1; i < ex.pareto.size(); ++i)
    EXPECT_LT(ex.pareto[i].cost.power, ex.pareto[i - 1].cost.power);
}

TEST(Explorer, SusanCombinedCurve) {
  dr::kernels::SusanParams sp;
  sp.H = 32;
  sp.W = 32;
  auto p = dr::kernels::susan(sp);
  SignalExploration ex = exploreSignal(p, p.findSignal("image"));

  EXPECT_EQ(ex.accesses.size(), 7u);  // one per mask row
  // Combined points sum the per-row copy candidates.
  ASSERT_FALSE(ex.combinedPoints.empty());
  for (const auto& pt : ex.combinedPoints) {
    EXPECT_GT(pt.size, 0);
    EXPECT_GT(pt.FR, 1.0);
    EXPECT_NE(pt.label.find("combined"), std::string::npos);
  }
  // Bypass combined points must dominate non-bypass at equal gamma in
  // reuse factor (Section 6.2's conclusion).
  for (const auto& a : ex.combinedPoints)
    if (a.bypass)
      for (const auto& b : ex.combinedPoints)
        if (!b.bypass && b.gamma == a.gamma && a.gamma >= 0) {
          EXPECT_GT(a.FR, b.FR);
        }

  // Chains were built (per-nest knees are not combined for multi-nest
  // signals, but the analytic candidates are).
  EXPECT_GT(ex.chains.size(), 1u);
  EXPECT_GE(ex.pareto.size(), 1u);
}

TEST(Explorer, MatmulBothSignals) {
  dr::kernels::MatmulParams mp;
  mp.N = 12;
  mp.K = 10;
  auto p = dr::kernels::matmul(mp);

  SignalExploration a = exploreSignal(p, p.findSignal("A"));
  // A[i][k] in pair (j,k): b'=0, c'=1, A_Max = K, F = N.
  bool rowPoint = false;
  for (const auto& pt : a.combinedPoints)
    if (pt.gamma == -1 && pt.size == 10) {
      rowPoint = true;
      EXPECT_NEAR(pt.FR, 12.0, 1e-9);
    }
  EXPECT_TRUE(rowPoint);

  SignalExploration b = exploreSignal(p, p.findSignal("B"));
  // B[k][j]: whole-matrix reuse across i (level 0, size repeat over j).
  bool wholeB = false;
  for (const auto& pt : b.combinedPoints)
    if (pt.gamma == -1 && pt.size == 10 * 12) {
      wholeB = true;
      EXPECT_NEAR(pt.FR, 12.0, 1e-9);
    }
  EXPECT_TRUE(wholeB);
}

TEST(Explorer, Conv2dImageReuse) {
  dr::kernels::Conv2dParams cp;
  cp.H = 20;
  cp.W = 20;
  cp.R = 1;
  auto p = dr::kernels::conv2d(cp);
  SignalExploration img = exploreSignal(p, p.findSignal("img"));
  EXPECT_FALSE(img.combinedPoints.empty());
  // w[] is Scalar in the (x,..,dx) pair: a 9-element copy reused per pixel.
  SignalExploration w = exploreSignal(p, p.findSignal("w"));
  bool coeffs = false;
  for (const auto& pt : w.combinedPoints)
    if (pt.size == 9) coeffs = true;
  EXPECT_TRUE(coeffs);
}

TEST(Explorer, AnalyticOnlyMode) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  ExploreOptions opts;
  opts.runSimulation = false;
  opts.includeWorkingSetKnees = false;
  SignalExploration ex = exploreSignal(p, p.findSignal("Old"), opts);
  EXPECT_TRUE(ex.simulatedCurve.points.empty());
  EXPECT_TRUE(ex.kneesPerNest.empty());
  EXPECT_FALSE(ex.combinedPoints.empty());
  EXPECT_FALSE(ex.chains.empty());
}

TEST(Explorer, SignalWithoutReads) {
  auto p = dr::kernels::motionEstimation({16, 16, 4, 2, true});
  EXPECT_THROW(exploreSignal(p, p.findSignal("Dist")),
               dr::support::ContractViolation);
  EXPECT_THROW(exploreSignal(p, 99), dr::support::ContractViolation);
}

TEST(Explorer, CandidatesConserveReads) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  SignalExploration ex = exploreSignal(p, p.findSignal("Old"));
  for (const auto& pt : ex.combinedPoints)
    EXPECT_EQ(pt.CtotCopyTotal + pt.CtotBypassTotal, ex.Ctot);
}

}  // namespace

// ---------------------------------------------------------------------------
// Loop interchange and the per-ordering reuse decision (Section 3 step 3).

#include "loopir/permute.h"

namespace {

TEST(Permute, RemapsCoefficientsAndTrace) {
  auto p = dr::kernels::matmul({6, 5});
  const auto& nest = p.nests[0];
  // Interchange j and k: (i, j, k) -> (i, k, j).
  auto swapped = dr::loopir::permuted(nest, {0, 2, 1});
  EXPECT_EQ(swapped.loops[1].name, "k");
  EXPECT_EQ(swapped.loops[2].name, "j");
  // A[i][k] now depends on the *middle* loop.
  EXPECT_EQ(swapped.body[0].indices[1].coeff(1), 1);
  EXPECT_EQ(swapped.body[0].indices[1].coeff(2), 0);
  EXPECT_EQ(swapped.iterationCount(), nest.iterationCount());

  // Identity permutation is a no-op.
  auto same = dr::loopir::permuted(nest, {0, 1, 2});
  EXPECT_EQ(same.body[0].indices[1].coeff(2),
            nest.body[0].indices[1].coeff(2));
  EXPECT_THROW(dr::loopir::permuted(nest, {0, 0, 1}),
               dr::support::ContractViolation);
}

TEST(Permute, OrderingEnumeration) {
  EXPECT_EQ(dr::loopir::loopOrderings(3).size(), 6u);
  EXPECT_EQ(dr::loopir::loopOrderings(4, 2).size(), 2u);
  EXPECT_EQ(dr::loopir::loopOrderings(1).size(), 1u);
  // Fixed prefix really is fixed.
  for (const auto& perm : dr::loopir::loopOrderings(4, 2)) {
    EXPECT_EQ(perm[0], 0);
    EXPECT_EQ(perm[1], 1);
  }
}

TEST(OrderingSweep, MatmulFindsRegisterReuseOrdering) {
  // A[i][k] reuse depends on the ordering: with j innermost the access is
  // invariant in the inner loop and a single register reaches F_R = N —
  // the sweep must discover that, beating the K-word row buffer of the
  // textbook (i,j,k) order at equal misses.
  auto p = dr::kernels::matmul({8, 6});
  auto results = dr::explorer::orderingSweep(p, p.findSignal("A"), 6);
  ASSERT_EQ(results.size(), 6u);
  ASSERT_TRUE(results.front().feasible);
  EXPECT_NEAR(results.front().bestFR, 8.0, 1e-9);
  EXPECT_EQ(results.front().bestSize, 1);  // j innermost: one register
  EXPECT_EQ(results.front().bestMisses, 48);  // compulsory only
  // Feasible orderings are sorted by background transfers, and some
  // ordering must be strictly worse than the best (k outermost streams A).
  bool strictlyWorse = false;
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (!results[i].feasible) continue;
    EXPECT_GE(results[i].bestMisses, results[i - 1].feasible
                                         ? results[i - 1].bestMisses
                                         : 0);
    if (results[i].bestMisses > results.front().bestMisses)
      strictlyWorse = true;
  }
  EXPECT_TRUE(strictlyWorse);
}

TEST(OrderingSweep, FixedPrefixRestricts) {
  auto p = dr::kernels::matmul({8, 6});
  auto results = dr::explorer::orderingSweep(p, p.findSignal("A"), 6, 2);
  EXPECT_EQ(results.size(), 1u);  // only k free -> single ordering
}

TEST(OrderingSweep, RejectsMultiNestSignals) {
  auto p = dr::kernels::susan({16, 16});
  EXPECT_THROW(dr::explorer::orderingSweep(p, p.findSignal("image"), 64),
               dr::support::ContractViolation);
}

TEST(Explorer, MultiLevelCandidatesImproveChains) {
  // The ML L1 closed-form point must appear among the ME chain designs.
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  bool found = false;
  for (const auto& d : ex.chains)
    if (d.label.find("ML L") != std::string::npos) found = true;
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Determinism: the parallel sweeps must be byte-identical to serial runs.

std::string describeExploration(const dr::explorer::SignalExploration& ex) {
  std::string s;
  auto add = [&s](auto v) { s += std::to_string(v) + ","; };
  add(ex.Ctot);
  add(ex.distinctElements);
  for (const auto& pt : ex.simulatedCurve.points) {
    add(pt.size);
    add(pt.writes);
    add(pt.reads);
    add(pt.reuseFactor);
  }
  for (const auto& a : ex.accesses) {
    add(a.nest);
    add(a.accessIndex);
    add(a.occurrences);
    add(a.Ctot);
    for (const auto& pt : a.points) {
      add(pt.size);
      add(pt.CjTotal);
      add(pt.FR);
      s += pt.label + ",";
    }
    for (const auto& pt : a.multiLevel) {
      add(pt.level);
      add(pt.size);
      add(pt.misses);
    }
  }
  for (const auto& pt : ex.combinedPoints) {
    add(pt.size);
    add(pt.FR);
    s += pt.label + ",";
  }
  for (const auto& d : ex.chains) {
    add(d.cost.power);
    add(d.cost.onChipSize);
    s += d.label + ",";
  }
  for (const auto& d : ex.pareto) {
    add(d.cost.power);
    add(d.cost.onChipSize);
    s += d.label + ",";
  }
  return s;
}

std::string describeOrderings(
    const std::vector<dr::explorer::OrderingResult>& rs) {
  std::string s;
  for (const auto& r : rs) {
    for (int l : r.perm) s += std::to_string(l);
    s += ":" + std::to_string(r.bestSize) + "/" +
         std::to_string(r.bestMisses) + "/" + std::to_string(r.bestFR) + "/" +
         std::to_string(r.feasible) + "/" + std::to_string(r.exact) + ";";
  }
  return s;
}

TEST(Explorer, ParallelOutputIdenticalToSerial) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  const int signal = p.findSignal("Old");

  setenv("DR_THREADS", "1", 1);
  std::string serialEx =
      describeExploration(dr::explorer::exploreSignal(p, signal));
  std::string serialOrd =
      describeOrderings(dr::explorer::orderingSweep(p, signal, 200));
  unsetenv("DR_THREADS");  // default: hardware concurrency

  std::string parallelEx =
      describeExploration(dr::explorer::exploreSignal(p, signal));
  std::string parallelOrd =
      describeOrderings(dr::explorer::orderingSweep(p, signal, 200));

  EXPECT_EQ(parallelEx, serialEx);
  EXPECT_EQ(parallelOrd, serialOrd);
}

}  // namespace

// ---------------------------------------------------------------------------
// Identical-index-expression merging (paper Section 6.4).

#include "frontend/frontend.h"

namespace {

TEST(Merging, IdenticalAccessesShareOneCopy) {
  // The same element is read twice per iteration: the copy is filled once
  // and serves both reads, doubling the reuse factor of every point.
  auto once = dr::frontend::compileKernel(R"(
    kernel single {
      array A[64];
      loop j = 0 .. 9 { loop k = 0 .. 4 { read A[j + k]; } }
    })");
  auto twice = dr::frontend::compileKernel(R"(
    kernel dup {
      array A[64];
      loop j = 0 .. 9 { loop k = 0 .. 4 {
        read A[j + k];
        read A[j + k];
      } }
    })");

  auto ex1 = dr::explorer::exploreSignal(once, 0);
  auto ex2 = dr::explorer::exploreSignal(twice, 0);
  ASSERT_EQ(ex2.accesses.size(), 1u);  // merged, not two copies
  EXPECT_EQ(ex2.accesses[0].occurrences, 2);
  EXPECT_EQ(ex2.Ctot, 2 * ex1.Ctot);

  // Same copy sizes, doubled reuse factors, same fills.
  ASSERT_EQ(ex1.combinedPoints.size(), ex2.combinedPoints.size());
  for (std::size_t i = 0; i < ex1.combinedPoints.size(); ++i) {
    EXPECT_EQ(ex2.combinedPoints[i].size, ex1.combinedPoints[i].size);
    EXPECT_EQ(ex2.combinedPoints[i].CjTotal, ex1.combinedPoints[i].CjTotal);
    EXPECT_NEAR(ex2.combinedPoints[i].FR, 2.0 * ex1.combinedPoints[i].FR,
                1e-9);
  }
  // Candidate conservation still holds with the multiplier.
  for (const auto& pt : ex2.combinedPoints)
    EXPECT_EQ(pt.CtotCopyTotal + pt.CtotBypassTotal, ex2.Ctot);
  // And the merged analysis beats the single-read one on the Belady curve
  // check: the simulated trace has both reads too.
  EXPECT_EQ(ex2.distinctElements, ex1.distinctElements);
}

TEST(Merging, DifferentExpressionsStaySeparate) {
  auto p = dr::kernels::waveletLifting({4, 16});
  auto ex = dr::explorer::exploreSignal(p, 0);
  EXPECT_EQ(ex.accesses.size(), 3u);  // 2i, 2i+1, 2i+2 are distinct
  for (const auto& a : ex.accesses) EXPECT_EQ(a.occurrences, 1);
}

}  // namespace
