// Fault-injection tests: every injected failure must take a clean error
// path — Status for user-facing I/O, std::bad_alloc unwinding without
// leaks for engine growth, budget degradation for deadline expiry — and
// never leave partial artifacts behind. Meaningful only when the build
// compiled the probes in (-DDR_FAULT_INJECT, the CI ASan job); otherwise
// every test skips.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <new>
#include <sstream>
#include <string>

#include "explorer/explorer.h"
#include "kernels/motion_estimation.h"
#include "support/budget.h"
#include "support/dataset.h"
#include "support/fault.h"
#include "support/journal.h"

namespace {

namespace fault = dr::support::fault;
using dr::support::BudgetTrip;
using dr::support::DataSet;
using dr::support::RunBudget;
using dr::support::StatusCode;

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fault::kCompiledIn)
      GTEST_SKIP() << "built without DR_FAULT_INJECT";
    fault::disarmAll();
  }
  void TearDown() override { fault::disarmAll(); }
};

bool fileExists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string readAll(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST_F(FaultTest, InjectedWriteFailureLeavesNoPartialFile) {
  const std::string path = ::testing::TempDir() + "dr_fault_ds.dat";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  fault::arm(fault::FaultSite::DatasetWrite, 1);
  auto st = DataSet::writeFileStatus(path, "half-written table\n");
  EXPECT_EQ(st.code(), StatusCode::IoError);
  // Neither the target nor the temp file survives the failure.
  EXPECT_FALSE(fileExists(path));
  EXPECT_FALSE(fileExists(path + ".tmp"));

  // The next (un-failed) write lands atomically with the full payload.
  fault::disarmAll();
  ASSERT_TRUE(DataSet::writeFileStatus(path, "complete table\n").isOk());
  EXPECT_EQ(readAll(path), "complete table\n");
  EXPECT_FALSE(fileExists(path + ".tmp"));
  std::remove(path.c_str());
}

TEST_F(FaultTest, InjectedWriteFailureNeverClobbersPreviousOutput) {
  const std::string path = ::testing::TempDir() + "dr_fault_keep.dat";
  ASSERT_TRUE(DataSet::writeFileStatus(path, "good data\n").isOk());

  fault::arm(fault::FaultSite::DatasetWrite, 1);
  auto st = DataSet::writeFileStatus(path, "new data\n");
  EXPECT_EQ(st.code(), StatusCode::IoError);
  // The failed overwrite left the previous content untouched.
  EXPECT_EQ(readAll(path), "good data\n");
  std::remove(path.c_str());
}

TEST_F(FaultTest, InjectedAllocFailureUnwindsCleanly) {
  // First engine-growth probe throws bad_alloc; under ASan this doubles
  // as a leak check of the partially-constructed streaming engines.
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  fault::arm(fault::FaultSite::Alloc, 1);
  EXPECT_THROW(
      { (void)dr::explorer::exploreSignal(p, p.findSignal("Old")); },
      std::bad_alloc);
}

TEST_F(FaultTest, CheckedFacadeMapsInjectedAllocToStatus) {
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  fault::arm(fault::FaultSite::Alloc, 1);
  auto r = dr::explorer::exploreSignalChecked(p, p.findSignal("Old"));
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), StatusCode::BudgetExceeded);
}

TEST_F(FaultTest, InjectedDeadlineDegradesToAnalytic) {
  // The deadline probe trips an armed-but-unexpired deadline: the
  // exploration must degrade down the ladder exactly as a real expiry
  // would, not throw.
  const auto p = dr::kernels::motionEstimation({.H = 32, .W = 32});
  RunBudget b;
  b.setDeadline(std::chrono::hours(24));  // far future
  fault::armRandom(fault::FaultSite::Deadline, /*seed=*/42, /*p=*/1.0);

  dr::explorer::ExploreOptions opts;
  opts.budget = &b;
  const auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"), opts);
  EXPECT_EQ(ex.curveFidelity, dr::simcore::Fidelity::Analytic);
  EXPECT_EQ(ex.simulationStats.trippedBy, BudgetTrip::Deadline);
  for (const auto& pt : ex.simulatedCurve.points)
    EXPECT_EQ(pt.fidelity, dr::simcore::Fidelity::Analytic);
}

TEST_F(FaultTest, InjectedTaskFaultIsRetriedTransparently) {
  // One injected failure on the first per-point task probe: the isolated
  // sweep retries and the journaled result stays identical to a clean
  // run — no Failed point, nothing lost.
  const auto p = dr::kernels::motionEstimation({.H = 16, .W = 16, .m = 2});
  const int signal = p.findSignal("Old");
  const auto clean = dr::explorer::exploreSignalChecked(p, signal);
  ASSERT_TRUE(clean.hasValue());

  const std::string path = ::testing::TempDir() + "dr_fault_task.drj";
  std::remove(path.c_str());
  dr::explorer::ResumeContext ctx;
  ctx.journalPath = path;
  fault::arm(fault::FaultSite::Task, 1);
  dr::explorer::ResumeSummary summary;
  auto r = dr::explorer::exploreSignalChecked(
      p, signal, dr::explorer::ExploreOptions{}, ctx, &summary);
  ASSERT_TRUE(r.hasValue()) << r.status().str();
  EXPECT_EQ(summary.pointsFailed, 0);
  ASSERT_EQ(r->simulatedCurve.points.size(),
            clean->simulatedCurve.points.size());
  for (std::size_t i = 0; i < r->simulatedCurve.points.size(); ++i) {
    EXPECT_EQ(r->simulatedCurve.points[i].size,
              clean->simulatedCurve.points[i].size);
    EXPECT_EQ(r->simulatedCurve.points[i].writes,
              clean->simulatedCurve.points[i].writes);
  }
  std::remove(path.c_str());
}

TEST_F(FaultTest, ExhaustedTaskRetriesIsolateToFailedPoints) {
  // Every task probe fails: each point exhausts its retries and is pinned
  // Fidelity::Failed, but the sweep itself — and the journal — survive.
  // Disarming and resuming then recovers every point exactly. Under ASan
  // this doubles as a leak check of both the exhaustion and recovery
  // paths.
  const auto p = dr::kernels::motionEstimation({.H = 16, .W = 16, .m = 2});
  const int signal = p.findSignal("Old");
  const auto clean = dr::explorer::exploreSignalChecked(p, signal);
  ASSERT_TRUE(clean.hasValue());

  const std::string path = ::testing::TempDir() + "dr_fault_task_all.drj";
  std::remove(path.c_str());
  dr::explorer::ResumeContext ctx;
  ctx.journalPath = path;
  fault::armRandom(fault::FaultSite::Task, /*seed=*/3, /*p=*/1.0);
  dr::explorer::ResumeSummary summary;
  auto r = dr::explorer::exploreSignalChecked(
      p, signal, dr::explorer::ExploreOptions{}, ctx, &summary);
  ASSERT_TRUE(r.hasValue()) << r.status().str();
  const auto total =
      static_cast<dr::support::i64>(clean->simulatedCurve.points.size());
  EXPECT_EQ(summary.pointsFailed, total);
  EXPECT_EQ(summary.pointsRecomputed, 0);
  for (const auto& pt : r->simulatedCurve.points) {
    EXPECT_EQ(pt.fidelity, dr::simcore::Fidelity::Failed);
    EXPECT_EQ(pt.writes, 0);
    EXPECT_EQ(pt.reads, 0);
  }

  fault::disarmAll();
  dr::explorer::ResumeSummary recovered;
  auto again = dr::explorer::exploreSignalChecked(
      p, signal, dr::explorer::ExploreOptions{}, ctx, &recovered);
  ASSERT_TRUE(again.hasValue()) << again.status().str();
  EXPECT_EQ(recovered.pointsFailed, 0);
  EXPECT_EQ(recovered.pointsRecomputed, total);  // Failed records retried
  ASSERT_EQ(again->simulatedCurve.points.size(),
            clean->simulatedCurve.points.size());
  for (std::size_t i = 0; i < again->simulatedCurve.points.size(); ++i) {
    const auto& a = again->simulatedCurve.points[i];
    const auto& c = clean->simulatedCurve.points[i];
    EXPECT_EQ(a.size, c.size);
    EXPECT_EQ(a.writes, c.writes);
    EXPECT_EQ(a.reads, c.reads);
    EXPECT_EQ(a.fidelity, c.fidelity);
  }
  std::remove(path.c_str());
}

TEST_F(FaultTest, DiskFullFailsJournalWritesButKeepsCommittedPrefix) {
  const std::string path = ::testing::TempDir() + "dr_fault_enospc.journal";
  std::remove(path.c_str());

  dr::support::JournalHeader header;
  header.configHash = 0xd15cf011ULL;
  header.description = "disk-full probe";
  auto writer = dr::support::JournalWriter::create(path, header);
  ASSERT_TRUE(writer.hasValue()) << writer.status().str();
  dr::support::JournalPoint pt;
  pt.size = 4;
  pt.writes = 2;
  pt.reads = 8;
  ASSERT_TRUE(writer->appendPoint(pt).isOk());
  ASSERT_TRUE(writer->commit().isOk());

  // A full disk mid-append is a structured IoError, never a crash...
  fault::arm(fault::FaultSite::DiskFull, 1);
  auto st = writer->appendPoint(pt);
  EXPECT_EQ(st.code(), StatusCode::IoError);
  fault::disarmAll();
  writer->close();  // best effort after the failure

  // ...and the committed prefix written before the failure still parses.
  auto loaded = dr::support::loadJournal(path);
  ASSERT_TRUE(loaded.hasValue()) << loaded.status().str();
  EXPECT_EQ(loaded->header.configHash, header.configHash);
  ASSERT_GE(loaded->points.size(), 1u);
  EXPECT_EQ(loaded->points.front(), pt);
  std::remove(path.c_str());
}

TEST_F(FaultTest, DiskFullFailsJournalCreationCleanly) {
  const std::string path = ::testing::TempDir() + "dr_fault_create.journal";
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());

  fault::arm(fault::FaultSite::DiskFull, 1);
  dr::support::JournalHeader header;
  auto writer = dr::support::JournalWriter::create(path, header);
  EXPECT_FALSE(writer.hasValue());
  EXPECT_EQ(writer.status().code(), StatusCode::IoError);
  fault::disarmAll();
  // No partial journal left behind at either the final or the temp path.
  EXPECT_FALSE(fileExists(path));
}

TEST_F(FaultTest, DeterministicSchedulesReplay) {
  fault::armRandom(fault::FaultSite::DatasetWrite, /*seed=*/7, /*p=*/0.5);
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i)
    first.push_back(fault::shouldFail(fault::FaultSite::DatasetWrite));
  fault::disarmAll();
  fault::armRandom(fault::FaultSite::DatasetWrite, /*seed=*/7, /*p=*/0.5);
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(fault::shouldFail(fault::FaultSite::DatasetWrite),
              first[static_cast<std::size_t>(i)])
        << "probe " << i;
}

}  // namespace
