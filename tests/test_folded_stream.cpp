// Streaming trace pipeline + periodic folding (trace/stream.h,
// trace/period.h, simcore/stream_stack.h, simcore/folded_curve.h): the
// streaming and folded engines must be byte-identical to the materialized
// reference path on every workload shape, and the period detector must
// prove exactly the shift-periodicity the folding relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "explorer/explorer.h"
#include "kernels/motion_estimation.h"
#include "loopir/permute.h"
#include "simcore/buffer_sim.h"
#include "simcore/folded_curve.h"
#include "simcore/lru_stack.h"
#include "simcore/opt_stack.h"
#include "simcore/reuse_curve.h"
#include "simcore/stream_stack.h"
#include "support/rng.h"
#include "trace/period.h"
#include "trace/stream.h"
#include "trace/walker.h"

#include "helpers.h"

namespace {

using dr::support::i64;
using dr::support::Rng;
using dr::trace::AccessEvent;
using dr::trace::AddressMap;
using dr::trace::Trace;
using dr::trace::TraceCursor;
using dr::trace::TraceFilter;
using dr::loopir::ArrayAccess;
using dr::loopir::Program;

TraceFilter readsOf(int signal) {
  TraceFilter f;
  f.signal = signal;
  return f;
}

/// Concatenate every chunk of a cursor.
std::vector<i64> drainCursor(TraceCursor& cursor, i64 chunkEvents) {
  std::vector<i64> all, buf;
  while (cursor.nextChunk(buf, chunkEvents) > 0)
    all.insert(all.end(), buf.begin(), buf.end());
  return all;
}

/// Two generic double loops reading the same signal A — the SUSAN shape
/// (series of nests), which has no global period.
Program twoNestProgram() {
  auto p = dr::test::genericDoubleLoop({0, 7, 0, 5}, 1, 1, 0);
  auto q = dr::test::genericDoubleLoop({0, 5, 0, 7}, 2, 1, 0);
  p.nests.push_back(q.nests.front());
  p.signals[0].dims = {40};  // covers both nests' index ranges
  return p;
}

// ---------------------------------------------------------------------------
// TraceCursor vs materialized walker

TEST(TraceCursor, ChunksConcatenateToMaterializedTrace) {
  auto p = dr::test::genericDoubleLoop({0, 11, 0, 4}, 2, 1, 0);
  AddressMap map(p);
  const TraceFilter filter = readsOf(0);
  const Trace t = dr::trace::collectTrace(p, map, filter);
  for (i64 chunkEvents : {i64{1}, i64{7}, i64{64}, i64{1} << 16}) {
    TraceCursor cursor(p, map, filter);
    EXPECT_EQ(cursor.length(), t.length());
    EXPECT_EQ(drainCursor(cursor, chunkEvents), t.addresses);
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.position(), t.length());

    // reset() replays the identical stream.
    cursor.reset();
    EXPECT_EQ(drainCursor(cursor, chunkEvents), t.addresses);
  }
}

TEST(TraceCursor, MultiNestStreamsAndNestFilters) {
  const Program p = twoNestProgram();
  AddressMap map(p);
  TraceFilter one = readsOf(0);
  one.nest = 1;
  one.accessIndex = 0;
  for (const TraceFilter& filter : {readsOf(0), one}) {
    const Trace t = dr::trace::collectTrace(p, map, filter);
    ASSERT_GT(t.length(), 0);
    TraceCursor cursor(p, map, filter);
    EXPECT_EQ(drainCursor(cursor, 13), t.addresses);
  }
}

TEST(TraceCursor, EmptyStream) {
  auto p = dr::test::genericDoubleLoop({0, 3, 0, 3}, 1, 1, 0);
  AddressMap map(p);
  TraceFilter writes;  // the generic loop has no writes
  writes.signal = 0;
  writes.includeReads = false;
  writes.includeWrites = true;
  TraceCursor cursor(p, map, writes);
  EXPECT_EQ(cursor.length(), 0);
  EXPECT_TRUE(cursor.done());
  std::vector<i64> buf;
  EXPECT_EQ(cursor.nextChunk(buf), 0);
  const auto [lo, hi] = cursor.addressRange();
  EXPECT_GT(lo, hi);
}

TEST(TemplatedWalk, MatchesStdFunctionWalk) {
  auto p = dr::test::tripleLoopWithIntermediate({0, 6, 0, 4}, 2, 1, 1, true);
  AddressMap map(p);
  const TraceFilter filter = readsOf(0);

  std::vector<i64> viaTemplate;
  dr::trace::walk(p, map, filter, [&](const AccessEvent& ev) {
    viaTemplate.push_back(ev.address);  // lambda binds the template overload
  });

  std::vector<i64> viaFunction;
  const std::function<void(const AccessEvent&)> cb =
      [&](const AccessEvent& ev) { viaFunction.push_back(ev.address); };
  dr::trace::walk(p, map, filter, cb);

  EXPECT_EQ(viaTemplate, viaFunction);
  EXPECT_EQ(viaTemplate, dr::trace::collectTrace(p, map, filter).addresses);
}

// ---------------------------------------------------------------------------
// Period detection

TEST(DetectPeriod, MotionEstimationOldAccess) {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 32;
  mp.W = 48;
  mp.n = 8;
  mp.m = 2;
  const auto p = dr::kernels::motionEstimation(mp);
  AddressMap map(p);
  TraceFilter filter;
  filter.signal = p.findSignal("Old");
  filter.nest = 0;
  filter.accessIndex = dr::kernels::oldAccessIndex();

  const auto nests = dr::trace::lowerProgram(p, map, filter);
  ASSERT_EQ(nests.size(), 1u);
  const auto pd = dr::trace::detectPeriod(nests);
  ASSERT_TRUE(pd.found);
  EXPECT_EQ(pd.level, 0);
  // One block row per chunk: (W/n) * (2m)^2 * n^2 events.
  EXPECT_EQ(pd.period, (mp.W / mp.n) * (2 * mp.m) * (2 * mp.m) * mp.n * mp.n);
  EXPECT_EQ(pd.repeatCount, mp.H / mp.n);
  // The shift is the lowered i1 coefficient (n rows of the padded frame) —
  // derived, not hardcoded, so the AddressMap's padding stays free.
  EXPECT_EQ(pd.shift, nests.front().accesses.front().levelCoeff.front());
  EXPECT_GE(pd.maxLateWarmGap, 1);
  EXPECT_EQ(pd.warmup, (1 + pd.maxLateWarmGap) * pd.period);
  EXPECT_EQ(pd.totalEvents, pd.period * pd.repeatCount);
}

TEST(DetectPeriod, MismatchedCoefficientsFindNothing) {
  // A[j + k] and A[2j + k] in one nest: no level has one common shift.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 9}, 1, 1, 0);
  ArrayAccess second = p.nests[0].body[0];
  second.indices[0].setCoeff(0, 2);
  p.nests[0].body.push_back(second);
  p.signals[0].dims = {64};
  AddressMap map(p);
  const auto pd =
      dr::trace::detectPeriod(dr::trace::lowerProgram(p, map, readsOf(0)));
  EXPECT_FALSE(pd.found);
}

TEST(DetectPeriod, MultiNestStreamsFindNothing) {
  const Program p = twoNestProgram();
  AddressMap map(p);
  const auto pd =
      dr::trace::detectPeriod(dr::trace::lowerProgram(p, map, readsOf(0)));
  EXPECT_FALSE(pd.found);
}

TEST(DetectPeriod, TripOneOuterLevelsAreSkipped) {
  // j has trip 1: the shift anchor must skip it, and the deepest valid
  // level is the innermost loop itself.
  auto p = dr::test::genericDoubleLoop({0, 0, 0, 9}, 1, 1, 0);
  AddressMap map(p);
  const auto pd =
      dr::trace::detectPeriod(dr::trace::lowerProgram(p, map, readsOf(0)));
  ASSERT_TRUE(pd.found);
  EXPECT_EQ(pd.level, 1);
  EXPECT_EQ(pd.period, 1);
  EXPECT_EQ(pd.repeatCount, 10);
  EXPECT_EQ(pd.shift, 1);
}

TEST(DetectPeriod, EightKFrameCountsStayExact) {
  // Overflow regression for the audited products in period.cpp: at an 8K
  // frame the total event count is 8.49e9 (past 32 bits), and warmup,
  // shift and totalEvents must all come out exact rather than wrapped
  // (or falsely tripping the checked ops).
  const auto p = dr::kernels::motionEstimation({.H = 4320, .W = 7680});
  AddressMap map(p);
  dr::trace::TraceFilter filter;
  filter.signal = p.findSignal("Old");
  filter.nest = 0;
  filter.accessIndex = dr::kernels::oldAccessIndex();
  const auto pd =
      dr::trace::detectPeriod(dr::trace::lowerProgram(p, map, filter));
  ASSERT_TRUE(pd.found);
  EXPECT_EQ(pd.level, 0);
  EXPECT_EQ(pd.period, 15728640);  // one block row of windows
  EXPECT_EQ(pd.repeatCount, 4320 / 8);
  EXPECT_EQ(pd.shift, 8 * 7695);  // n rows of the padded frame
  EXPECT_EQ(pd.maxLateWarmGap, 1);
  EXPECT_EQ(pd.warmup, 2 * pd.period);
  EXPECT_EQ(pd.totalEvents, dr::support::i64{8493465600});
}

// ---------------------------------------------------------------------------
// Streaming accumulators vs batch engines

TEST(StreamAccumulators, MatchBatchEnginesOnRandomTraces) {
  for (std::uint64_t seed : {1u, 7u, 23u}) {
    Rng rng(seed);
    // 20k accesses over 500 addresses: deep enough to force the LRU window
    // compaction (window floor 4096) and OPT slot-tree growth (64 slots
    // by default, grown geometrically as addresses appear).
    std::vector<i64> addresses;
    for (i64 i = 0; i < 20000; ++i) addresses.push_back(rng.uniform(0, 499));
    const dr::trace::DenseTrace dense = dr::trace::densify(addresses);

    dr::simcore::OptStackAccumulator opt;
    dr::simcore::LruStackAccumulator lru;
    for (i64 id : dense.ids) {
      opt.push(id);
      lru.push(id);
    }
    EXPECT_EQ(opt.accesses(), dense.length());
    EXPECT_EQ(opt.distinct(), dense.distinct());
    EXPECT_EQ(lru.distinct(), dense.distinct());

    const dr::simcore::OptStackDistances optRef(dense);
    const dr::simcore::LruStackDistances lruRef(dense);
    const auto optH = opt.finalize();
    const auto lruH = lru.finalize();
    EXPECT_EQ(optH.histogram, optRef.histogram());
    EXPECT_EQ(optH.coldMisses, optRef.coldMisses());
    EXPECT_EQ(lruH.histogram, lruRef.histogram());
    EXPECT_EQ(lruH.coldMisses, lruRef.coldMisses());
    for (i64 cap : {i64{0}, i64{1}, i64{3}, i64{17}, i64{100}, i64{5000}}) {
      EXPECT_EQ(optH.missesAt(cap), optRef.missesAt(cap));
      EXPECT_EQ(lruH.missesAt(cap), lruRef.missesAt(cap));
    }
    EXPECT_EQ(optH.saturationSize(), optRef.saturationSize());
  }
}

TEST(StreamAccumulators, PushReturnsTheStackDistance) {
  // a b a b. LRU: both reuses find two elements on the stack. OPT: the
  // second `a` hits already at capacity 1 (MIN bypasses `b`, whose reuse
  // interval is still open when `a` returns), the second `b` needs 2.
  dr::simcore::OptStackAccumulator opt;
  EXPECT_EQ(opt.push(0), 0);
  EXPECT_EQ(opt.push(1), 0);
  EXPECT_EQ(opt.push(0), 1);
  EXPECT_EQ(opt.push(1), 2);
  dr::simcore::LruStackAccumulator lru;
  EXPECT_EQ(lru.push(0), 0);
  EXPECT_EQ(lru.push(1), 0);
  EXPECT_EQ(lru.push(0), 2);
  EXPECT_EQ(lru.push(1), 2);
}

// ---------------------------------------------------------------------------
// Folded / streaming curves vs materialized reference (property sweep)

struct SweepCase {
  Program program;
  std::string label;
};

/// The curated shapes: periodic ramps (fold), warmup-dominated streams,
/// non-periodic multi-access nests, multi-nest streams (no period), and
/// tiny repeat counts (folding never kicks in).
std::vector<SweepCase> sweepCases() {
  std::vector<SweepCase> cases;
  auto add = [&](Program p, std::string label) {
    cases.push_back(SweepCase{std::move(p), std::move(label)});
  };

  // Generic double loops (periodic at level 0, various overlap shapes).
  add(dr::test::genericDoubleLoop({0, 19, 0, 3}, 1, 1, 0), "j+k");
  add(dr::test::genericDoubleLoop({0, 15, 0, 5}, 2, 1, 0), "2j+k");
  add(dr::test::genericDoubleLoop({0, 12, 0, 7}, 1, 2, 0), "j+2k");
  add(dr::test::genericDoubleLoop({0, 30, 0, 2}, 3, -1, 3), "3j-k");
  add(dr::test::genericDoubleLoop(
          {0, 9, 0, 4}, std::vector<dr::test::DimCoeffs>{{1, 0, 0}, {0, 1, 0}}),
      "2d");

  // Triple loops with an intermediate repeat level (Section 6.3).
  add(dr::test::tripleLoopWithIntermediate({0, 11, 0, 3}, 4, 1, 1, false),
      "triple-r-free");
  add(dr::test::tripleLoopWithIntermediate({0, 7, 0, 3}, 3, 1, 1, true),
      "triple-r-dep");

  // Tiny repeat counts: warmup + convergence cover the whole stream, so
  // the engine must play it out plainly (warmup-only traces).
  add(dr::test::genericDoubleLoop({0, 1, 0, 9}, 1, 1, 0), "repeat2");
  add(dr::test::genericDoubleLoop({0, 2, 0, 9}, 1, 1, 0), "repeat3");

  // Mismatched outer coefficients: no period, streaming fallback.
  {
    auto p = dr::test::genericDoubleLoop({0, 9, 0, 6}, 1, 1, 0);
    ArrayAccess second = p.nests[0].body[0];
    second.indices[0].setCoeff(0, 2);
    p.nests[0].body.push_back(second);
    p.signals[0].dims = {64};
    add(std::move(p), "no-period");
  }

  add(twoNestProgram(), "two-nests");

  // Small motion estimation, Old-frame access (periodic at level 0).
  {
    dr::kernels::MotionEstimationParams mp;
    mp.H = 32;
    mp.W = 32;
    mp.n = 8;
    mp.m = 2;
    add(dr::kernels::motionEstimation(mp), "me-small");
  }
  return cases;
}

TraceFilter sweepFilter(const SweepCase& c) {
  if (c.label == "me-small") {
    TraceFilter f;
    f.signal = c.program.findSignal("Old");
    f.nest = 0;
    f.accessIndex = dr::kernels::oldAccessIndex();
    return f;
  }
  return readsOf(0);
}

TEST(FoldedCurve, ByteIdenticalToMaterializedOnAllShapes) {
  int foldedOpt = 0;
  int foldedLru = 0;
  for (const SweepCase& c : sweepCases()) {
    SCOPED_TRACE(c.label);
    AddressMap map(c.program);
    const TraceFilter filter = sweepFilter(c);
    const Trace t = dr::trace::collectTrace(c.program, map, filter);
    ASSERT_GT(t.length(), 0);
    const std::vector<i64> sizes =
        dr::simcore::sizeGrid(std::max<i64>(1, t.distinctCount()), 8);

    for (auto policy : {dr::simcore::Policy::Opt, dr::simcore::Policy::Lru}) {
      SCOPED_TRACE(policy == dr::simcore::Policy::Opt ? "opt" : "lru");
      const auto ref = dr::simcore::simulateReuseCurve(t, sizes, policy);
      dr::simcore::FoldedStats stats;
      const auto streamed = dr::simcore::simulateReuseCurve(
          c.program, map, filter, sizes, policy, &stats);
      ASSERT_EQ(streamed.points.size(), ref.points.size());
      for (std::size_t i = 0; i < ref.points.size(); ++i) {
        EXPECT_EQ(streamed.points[i].size, ref.points[i].size);
        EXPECT_EQ(streamed.points[i].writes, ref.points[i].writes);
        EXPECT_EQ(streamed.points[i].reads, ref.points[i].reads);
        EXPECT_DOUBLE_EQ(streamed.points[i].reuseFactor,
                         ref.points[i].reuseFactor);
      }
      EXPECT_TRUE(stats.exact);
      EXPECT_EQ(stats.totalEvents, t.length());
      EXPECT_EQ(stats.distinct, t.distinctCount());
      if (stats.folded) {
        (policy == dr::simcore::Policy::Opt ? foldedOpt : foldedLru) += 1;
        EXPECT_GE(stats.foldPeriodChunks, 1);
        EXPECT_LT(stats.simulatedEvents, stats.totalEvents);
      } else {
        EXPECT_EQ(stats.simulatedEvents, stats.totalEvents);
      }

      // Folding disabled: stream every event (across many tiny chunks)
      // and still agree with the reference.
      dr::simcore::FoldedCurveOptions noFold;
      noFold.allowFold = false;
      noFold.chunkEvents = 64;
      dr::simcore::FoldedStats plainStats;
      const auto plain = dr::simcore::simulateReuseCurve(
          c.program, map, filter, sizes, policy, &plainStats, noFold);
      EXPECT_FALSE(plainStats.folded);
      EXPECT_EQ(plainStats.simulatedEvents, t.length());
      for (std::size_t i = 0; i < ref.points.size(); ++i)
        EXPECT_EQ(plain.points[i].writes, ref.points[i].writes);
    }

    // Saturation size: streaming program path == materialized path.
    EXPECT_EQ(dr::simcore::optSaturationSize(c.program, map, filter),
              dr::simcore::optSaturationSize(t));
  }
  // The sweep must exercise both certified fold paths — the OPT slot
  // certificate and the LRU delta cycle — not only the fallbacks.
  EXPECT_GT(foldedOpt, 0);
  EXPECT_GT(foldedLru, 0);
}

TEST(FoldedCurve, StreamingFifoMatchesMaterializedFifo) {
  for (const SweepCase& c : sweepCases()) {
    if (c.label != "j+k" && c.label != "no-period" && c.label != "two-nests")
      continue;
    SCOPED_TRACE(c.label);
    AddressMap map(c.program);
    const TraceFilter filter = sweepFilter(c);
    const Trace t = dr::trace::collectTrace(c.program, map, filter);
    TraceCursor cursor(c.program, map, filter);
    for (i64 cap : {i64{0}, i64{1}, i64{2}, i64{5}, i64{13}, i64{100}}) {
      const auto ref = dr::simcore::simulateFifo(t, cap);
      const auto streamed = dr::simcore::streamFifo(cursor, cap, 32);
      EXPECT_EQ(streamed.misses, ref.misses);
      EXPECT_EQ(streamed.hits, ref.hits);
      EXPECT_EQ(streamed.accesses, ref.accesses);
    }
    // The Fifo branch of the program-level curve entry point.
    const std::vector<i64> sizes{1, 2, 5, 13};
    const auto refCurve =
        dr::simcore::simulateReuseCurve(t, sizes, dr::simcore::Policy::Fifo);
    const auto streamedCurve = dr::simcore::simulateReuseCurve(
        c.program, map, filter, sizes, dr::simcore::Policy::Fifo);
    ASSERT_EQ(streamedCurve.points.size(), refCurve.points.size());
    for (std::size_t i = 0; i < refCurve.points.size(); ++i)
      EXPECT_EQ(streamedCurve.points[i].writes, refCurve.points[i].writes);
  }
}

// ---------------------------------------------------------------------------
// Motion-estimation knees (paper Fig. 4a) on the folded streaming curve

namespace {

dr::simcore::ReuseCurve curveFromHist(const dr::simcore::StackHistogram& hist,
                                      const std::vector<i64>& sizes) {
  dr::simcore::ReuseCurve curve;
  for (i64 s : sizes) {
    const auto r = hist.resultAt(s);
    dr::simcore::ReusePoint pt;
    pt.size = s;
    pt.writes = r.misses;
    pt.reads = r.accesses;
    pt.reuseFactor = r.reuseFactor();
    curve.points.push_back(pt);
  }
  return curve;
}

}  // namespace

TEST(FoldedCurve, MotionEstimationQcifKneesPinned) {
  // Full QCIF Old-frame curve, 6.5M events. OPT never certifies a steady
  // state on motion estimation (a slot band drifts forever — see
  // folded_curve.h), so the exact run streams everything and the
  // approximate fold is checked against it.
  const auto p = dr::kernels::motionEstimation({});
  AddressMap map(p);
  TraceFilter filter;
  filter.signal = p.findSignal("Old");
  filter.nest = 0;
  filter.accessIndex = dr::kernels::oldAccessIndex();

  TraceCursor cursor(p, map, filter);
  const auto pd = dr::trace::detectPeriod(cursor.nests());
  ASSERT_TRUE(pd.found);
  dr::simcore::FoldedStats stats;
  const auto hist = dr::simcore::foldedStackHistogram(
      cursor, pd, dr::simcore::Policy::Opt, &stats);
  EXPECT_TRUE(stats.exact);
  EXPECT_EQ(stats.totalEvents, 6488064);
  EXPECT_EQ(stats.distinct, 30369);  // padded Old frame, 159 x 191

  const std::vector<i64> sizes = dr::simcore::sizeGrid(stats.distinct, 24);
  const auto curve = curveFromHist(hist, sizes);

  // The four discontinuities A_1..A_4 of Fig. 4a, located by the
  // log-step-normalized knee detector on the geometric grid.
  const auto knees = dr::simcore::findKnees(curve, 1.2);
  ASSERT_EQ(knees.size(), 4u);
  // A_1 ~ one window line, A_2 ~ a block row of the window, A_3 ~ the
  // sliding column of the search region, A_4 ~ the whole frame.
  const i64 expectedLo[4] = {48, 150, 350, 2500};
  const i64 expectedHi[4] = {72, 240, 680, 4500};
  for (int i = 0; i < 4; ++i) {
    const i64 size = curve.points[knees[static_cast<std::size_t>(i)]].size;
    EXPECT_GE(size, expectedLo[i]) << "knee " << i;
    EXPECT_LE(size, expectedHi[i]) << "knee " << i;
  }
  // Reuse factors reached at the knees (paper: 5.6 / ~32 / ~84 / 213.6).
  EXPECT_NEAR(curve.points[knees[0]].reuseFactor, 5.6, 0.5);
  EXPECT_NEAR(curve.points[knees[1]].reuseFactor, 32.0, 4.0);
  EXPECT_NEAR(curve.points[knees[2]].reuseFactor, 84.0, 6.0);
  EXPECT_NEAR(curve.points[knees[3]].reuseFactor, 213.6, 0.5);
  // Full-frame reuse factor: 6488064 reads / 30369 elements.
  EXPECT_NEAR(curve.points.back().reuseFactor, 213.64, 0.01);

  // Approximate fold: simulates a third of the frame, reports
  // exact = false, and lands every curve point within the documented
  // wobble bound — same knees, same science, fraction of the events.
  dr::simcore::FoldedCurveOptions apx;
  apx.approximateAfterBudget = true;
  apx.maxMeasuredChunks = 4;
  dr::simcore::FoldedStats apxStats;
  const auto apxHist = dr::simcore::foldedStackHistogram(
      cursor, pd, dr::simcore::Policy::Opt, &apxStats, apx);
  ASSERT_TRUE(apxStats.folded);
  EXPECT_FALSE(apxStats.exact);
  EXPECT_EQ(apxStats.totalEvents, stats.totalEvents);
  EXPECT_EQ(apxStats.distinct, stats.distinct);
  EXPECT_LT(apxStats.simulatedEvents, stats.totalEvents / 2);

  const auto apxCurve = curveFromHist(apxHist, sizes);
  // Wobble bound: ±1 per affected bin per extrapolated chunk, ~600
  // affected bins, 12 extrapolated chunks.
  for (std::size_t i = 0; i < curve.points.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(apxCurve.points[i].writes),
                static_cast<double>(curve.points[i].writes), 8000.0)
        << "size " << curve.points[i].size;
  }
  const auto apxKnees = dr::simcore::findKnees(apxCurve, 1.2);
  EXPECT_EQ(apxKnees, knees);
}

TEST(FoldedCurve, LruFoldsExactlyOnMotionEstimation) {
  // LRU distances are shift-invariant, so the per-chunk deltas repeat
  // with super-period 1 and the fold certifies — the engine answers the
  // whole 8-block-row frame from 4 simulated chunks, byte-exact.
  dr::kernels::MotionEstimationParams mp;
  mp.H = 64;
  mp.W = 32;
  mp.n = 8;
  mp.m = 2;
  const auto p = dr::kernels::motionEstimation(mp);
  AddressMap map(p);
  TraceFilter filter;
  filter.signal = p.findSignal("Old");
  filter.nest = 0;
  filter.accessIndex = dr::kernels::oldAccessIndex();

  const Trace t = dr::trace::collectTrace(p, map, filter);
  const std::vector<i64> sizes = dr::simcore::sizeGrid(t.distinctCount(), 32);
  const auto ref =
      dr::simcore::simulateReuseCurve(t, sizes, dr::simcore::Policy::Lru);
  dr::simcore::FoldedStats stats;
  const auto streamed = dr::simcore::simulateReuseCurve(
      p, map, filter, sizes, dr::simcore::Policy::Lru, &stats);
  ASSERT_TRUE(stats.folded);
  EXPECT_TRUE(stats.exact);
  EXPECT_GE(stats.foldPeriodChunks, 1);
  EXPECT_LT(stats.simulatedEvents, stats.totalEvents);
  ASSERT_EQ(streamed.points.size(), ref.points.size());
  for (std::size_t i = 0; i < ref.points.size(); ++i) {
    EXPECT_EQ(streamed.points[i].writes, ref.points[i].writes);
    EXPECT_EQ(streamed.points[i].reads, ref.points[i].reads);
  }
}

// ---------------------------------------------------------------------------
// Explorer wiring

TEST(ExplorerStreaming, MatchesMaterializedEngine) {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 64;  // 8 block rows: enough periods for the fold to engage
  mp.W = 32;
  mp.n = 8;
  mp.m = 2;
  const auto p = dr::kernels::motionEstimation(mp);
  const int oldSig = p.findSignal("Old");

  dr::explorer::ExploreOptions streaming;
  streaming.engine = dr::explorer::SimEngine::Streaming;
  dr::explorer::ExploreOptions materialized;
  materialized.engine = dr::explorer::SimEngine::Materialized;

  const auto s = dr::explorer::exploreSignal(p, oldSig, streaming);
  const auto m = dr::explorer::exploreSignal(p, oldSig, materialized);

  EXPECT_EQ(s.Ctot, m.Ctot);
  EXPECT_EQ(s.distinctElements, m.distinctElements);
  ASSERT_EQ(s.simulatedCurve.points.size(), m.simulatedCurve.points.size());
  for (std::size_t i = 0; i < s.simulatedCurve.points.size(); ++i) {
    EXPECT_EQ(s.simulatedCurve.points[i].size, m.simulatedCurve.points[i].size);
    EXPECT_EQ(s.simulatedCurve.points[i].writes,
              m.simulatedCurve.points[i].writes);
    EXPECT_EQ(s.simulatedCurve.points[i].reads,
              m.simulatedCurve.points[i].reads);
  }
  ASSERT_EQ(s.pareto.size(), m.pareto.size());
  for (std::size_t i = 0; i < s.pareto.size(); ++i)
    EXPECT_EQ(s.pareto[i].label, m.pareto[i].label);

  // The streaming engine stays exact whether or not a fold certified
  // (OPT on motion estimation streams — see folded_curve.h).
  EXPECT_TRUE(s.simulationStats.exact);
  EXPECT_EQ(s.simulationStats.totalEvents, s.Ctot);
  // The materialized oracle reports what it simulated, never a fold.
  EXPECT_FALSE(m.simulationStats.folded);
  EXPECT_EQ(m.simulationStats.simulatedEvents, m.Ctot);
}

TEST(ExplorerStreaming, AnalyticOnlyRunSkipsTheStackEngine) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1, 0);
  dr::explorer::ExploreOptions opts;
  opts.runSimulation = false;
  const auto r = dr::explorer::exploreSignal(p, 0, opts);
  EXPECT_TRUE(r.simulatedCurve.points.empty());
  EXPECT_EQ(r.Ctot, 50);
  EXPECT_EQ(r.distinctElements, 14);
  EXPECT_EQ(r.simulationStats.simulatedEvents, 0);
  EXPECT_EQ(r.simulationStats.totalEvents, 50);
}

TEST(OrderingSweep, TopKValidationFillsSimulatedMisses) {
  const auto p = dr::test::genericDoubleLoop({0, 9, 0, 3}, 1, 1, 0);
  const auto results = dr::explorer::orderingSweep(p, 0, 8, 0, 1);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].feasible);
  EXPECT_GE(results[0].simMisses, 0);
  EXPECT_TRUE(results[0].simExact);
  // Only the top-1 ordering was validated.
  EXPECT_EQ(results[1].simMisses, -1);

  // Cross-check against the materialized reference on the reordered
  // program (p is already normalized, so the permutation applies as-is).
  auto reordered = p;
  reordered.nests[0] = dr::loopir::permuted(p.nests[0], results[0].perm);
  AddressMap rmap(reordered);
  const Trace t = dr::trace::readTrace(reordered, rmap, 0);
  EXPECT_EQ(results[0].simMisses,
            dr::simcore::simulateOpt(t, results[0].bestSize).misses);
}

}  // namespace
