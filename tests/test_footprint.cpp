// Tests for the closed-form multi-level footprint model (the paper's
// "multiple level hierarchies" extension): per-dimension reachable-offset
// shapes, shifted-overlap counting, and the multi-level design points
// validated against Belady simulation.

#include <gtest/gtest.h>

#include "analytic/footprint.h"
#include "helpers.h"
#include "kernels/conv2d.h"
#include "kernels/motion_estimation.h"
#include "simcore/buffer_sim.h"
#include "support/rng.h"
#include "trace/walker.h"

namespace {

using namespace dr::analytic;
namespace loopir = dr::loopir;
using dr::support::i64;
using dr::test::PairBox;

loopir::LoopNest simpleNest(std::vector<std::pair<i64, i64>> ranges) {
  loopir::LoopNest nest;
  int i = 0;
  for (auto [lo, hi] : ranges)
    nest.loops.push_back(loopir::Loop{"i" + std::to_string(i++), lo, hi, 1});
  return nest;
}

TEST(DimShapeTest, ContiguousWindow) {
  auto nest = simpleNest({{0, 4}});
  loopir::AffineExpr e;
  e.setCoeff(0, 1);
  DimShape s = dimShape(e, nest, 0);
  EXPECT_EQ(s.span, 5);
  EXPECT_EQ(s.count, 5);
  EXPECT_TRUE(s.contiguous);
  EXPECT_EQ(s.overlapWithShift(0), 5);
  EXPECT_EQ(s.overlapWithShift(2), 3);
  EXPECT_EQ(s.overlapWithShift(-2), 3);
  EXPECT_EQ(s.overlapWithShift(5), 0);
}

TEST(DimShapeTest, GappyStride) {
  // 2*x, x in [0,2]: offsets {0, 2, 4}.
  auto nest = simpleNest({{0, 2}});
  loopir::AffineExpr e;
  e.setCoeff(0, 2);
  DimShape s = dimShape(e, nest, 0);
  EXPECT_EQ(s.span, 5);
  EXPECT_EQ(s.count, 3);
  EXPECT_FALSE(s.contiguous);
  EXPECT_EQ(s.overlapWithShift(2), 2);  // {2,4} overlap {0,2}
  EXPECT_EQ(s.overlapWithShift(1), 0);  // odd shift misses entirely
}

TEST(DimShapeTest, TwoLoopsCombine) {
  // x + 4*y, x in [0,2], y in [0,1]: {0,1,2,4,5,6}.
  auto nest = simpleNest({{0, 1}, {0, 2}});
  loopir::AffineExpr e;
  e.setCoeff(0, 4);
  e.setCoeff(1, 1);
  DimShape s = dimShape(e, nest, 0);
  EXPECT_EQ(s.span, 7);
  EXPECT_EQ(s.count, 6);
  EXPECT_FALSE(s.contiguous);
  // Restricting to the inner loop only: {0,1,2}.
  DimShape inner = dimShape(e, nest, 1);
  EXPECT_EQ(inner.count, 3);
  EXPECT_TRUE(inner.contiguous);
}

TEST(DimShapeTest, NegativeCoefficientsMirror) {
  auto nest = simpleNest({{0, 2}});
  loopir::AffineExpr pos;
  pos.setCoeff(0, 2);
  loopir::AffineExpr neg;
  neg.setCoeff(0, -2);
  DimShape a = dimShape(pos, nest, 0);
  DimShape b = dimShape(neg, nest, 0);
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.span, b.span);
  EXPECT_EQ(a.overlapWithShift(2), b.overlapWithShift(2));
}

TEST(MultiLevel, MotionEstimationClosedForms) {
  // Full paper-scale kernel: the closed forms must reproduce the measured
  // curve values (EXPERIMENTS.md): footprint of one block row of windows
  // is (2m+n-1) x (W+2m-1) = 23*191 = 4393 with 30369 fills (= the
  // distinct element count: perfect inter-row overlap accounting).
  auto p = dr::kernels::motionEstimation({});
  auto pts = multiLevelPoints(p.nests[0],
                              p.nests[0].body[dr::kernels::oldAccessIndex()]);
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0].size, 159 * 191);
  EXPECT_EQ(pts[0].misses, 159 * 191);
  EXPECT_EQ(pts[1].size, 23 * 191);   // A_1 knee
  EXPECT_EQ(pts[1].misses, 159 * 191);  // exact overlap: compulsory only
  EXPECT_EQ(pts[2].size, 23 * 23);    // A_2 knee
  EXPECT_EQ(pts[3].size, 8 * 23);     // A_3 knee
  EXPECT_EQ(pts[4].size, 8 * 8);
  for (const auto& pt : pts) EXPECT_TRUE(pt.exact);
  // Reuse factors decrease monotonically with level.
  for (std::size_t i = 1; i < pts.size(); ++i)
    EXPECT_LE(pts[i].FR.toDouble(), pts[i - 1].FR.toDouble() + 1e-9);
}

TEST(MultiLevel, PointsAreFeasibleAgainstBelady) {
  // Property: a buffer of the footprint size can achieve the predicted
  // fill count, so OPT at that size can only do better.
  dr::kernels::MotionEstimationParams mp{32, 32, 4, 4};
  auto p = dr::kernels::motionEstimation(mp);
  dr::trace::AddressMap map(p);
  auto t = dr::trace::readTrace(p, map, p.findSignal("Old"));
  auto nu = dr::simcore::computeNextUse(t);
  auto pts = multiLevelPoints(p.nests[0],
                              p.nests[0].body[dr::kernels::oldAccessIndex()]);
  for (const auto& pt : pts) {
    auto sim = dr::simcore::simulateOpt(t, pt.size, nu);
    EXPECT_LE(sim.misses, pt.misses) << "level " << pt.level;
    EXPECT_GE(pt.misses, t.distinctCount()) << "level " << pt.level;
  }
  // Level 1's overlap accounting is exact here (monotone row scans).
  EXPECT_EQ(pts[1].misses,
            dr::simcore::simulateOpt(t, pts[1].size, nu).misses);
}

class FootprintVsOpt : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FootprintVsOpt, RandomAffineAccesses) {
  dr::support::Rng rng(GetParam());
  PairBox box{0, rng.uniform(3, 10), 0, rng.uniform(3, 10)};
  auto p = dr::test::genericDoubleLoop(
      box, std::vector<dr::test::DimCoeffs>{
               {rng.uniform(-2, 2), rng.uniform(-2, 2), 0},
               {rng.uniform(-2, 2), rng.uniform(-2, 2), 0}});
  auto pts = multiLevelPoints(p.nests[0], p.nests[0].body[0]);
  dr::trace::AddressMap map(p);
  auto t = dr::trace::readTrace(p, map, 0);
  for (const auto& pt : pts) {
    if (!pt.exact) continue;
    EXPECT_EQ(pt.Ctot, t.length());
    auto sim = dr::simcore::simulateOpt(t, std::max<i64>(pt.size, 1));
    EXPECT_LE(sim.misses, pt.misses)
        << "level " << pt.level << " size " << pt.size;
    EXPECT_GE(pt.misses, t.distinctCount());
  }
  // Level 0 is always the whole footprint = the distinct element count
  // when the dimension factorization applies.
  if (pts[0].exact) {
    EXPECT_EQ(pts[0].size, t.distinctCount());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FootprintVsOpt,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(MultiLevel, SharedIteratorFlagsApproximate) {
  // A[j+k][k]: both dimensions driven by k -> the product factorization
  // does not hold and the points must be flagged.
  auto p = dr::test::genericDoubleLoop(
      {0, 5, 0, 5},
      std::vector<dr::test::DimCoeffs>{{1, 1, 0}, {0, 1, 0}});
  auto pts = multiLevelPoints(p.nests[0], p.nests[0].body[0]);
  EXPECT_FALSE(pts[0].exact);
  // The innermost level's windows only involve k in both dims too.
  EXPECT_FALSE(pts[1].exact);
}

TEST(MultiLevel, Conv2dFootprints) {
  dr::kernels::Conv2dParams cp{16, 16, 1};
  auto p = dr::kernels::conv2d(cp);
  auto pts = multiLevelPoints(p.nests[0], p.nests[0].body[0]);  // img
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[0].size, 16 * 16);   // whole image
  EXPECT_EQ(pts[1].size, 3 * 16);    // three rows per y
  EXPECT_EQ(pts[2].size, 3 * 3);     // window per (y,x)
  // Coefficient array: scalar footprint of the whole 3x3 at every level.
  auto wpts = multiLevelPoints(p.nests[0], p.nests[0].body[1]);
  EXPECT_EQ(wpts[0].size, 9);
  EXPECT_EQ(wpts[1].size, 9);
  EXPECT_EQ(wpts[2].size, 9);
  EXPECT_EQ(wpts[3].size, 3);
}

TEST(MultiLevel, EightKFrameCountsStayExact) {
  // Overflow regression for the audited checked-arithmetic paths: a
  // 256-frame sweep over 8K frames (7680x4320) pushes Ctot, the level-0
  // footprint, and every per-level miss accumulation to 8,493,465,600 —
  // past 32 bits — and each must come through exact, not wrapped. (The
  // per-dimension access keeps the outer walks to ~1M tuples, so the
  // test stays fast at full 8K magnitudes.)
  loopir::LoopNest nest;
  nest.loops = {loopir::Loop{"t", 0, 255, 1}, loopir::Loop{"y", 0, 4319, 1},
                loopir::Loop{"x", 0, 7679, 1}};
  loopir::ArrayAccess acc;
  acc.kind = loopir::AccessKind::Read;
  for (int d = 0; d < 3; ++d) {
    loopir::AffineExpr e;
    e.setCoeff(d, 1);
    acc.indices.push_back(e);
  }

  const i64 total = i64{256} * 4320 * 7680;  // 8,493,465,600
  auto pts = multiLevelPoints(nest, acc);
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_EQ(pts[0].size, total);  // whole sequence resident at once
  EXPECT_EQ(pts[1].size, i64{4320} * 7680);  // one 8K frame
  EXPECT_EQ(pts[2].size, 7680);              // one row
  for (const auto& pt : pts) {
    EXPECT_TRUE(pt.exact);
    EXPECT_EQ(pt.Ctot, total);
    EXPECT_EQ(pt.misses, total);  // no cross-frame or cross-row overlap
  }
}

}  // namespace
