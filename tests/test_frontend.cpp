// Unit tests for the kernel-language frontend: lexer, parser, semantic
// analysis and the one-call compileKernel entry point.

#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "frontend/lexer.h"
#include "frontend/parser.h"
#include "frontend/sema.h"
#include "support/contracts.h"

namespace {

using namespace dr::frontend;

TEST(Lexer, TokenKinds) {
  auto toks = tokenize("kernel k { param n = 8; } # comment");
  ASSERT_GE(toks.size(), 9u);
  EXPECT_EQ(toks[0].kind, TokKind::KwKernel);
  EXPECT_EQ(toks[1].kind, TokKind::Ident);
  EXPECT_EQ(toks[1].text, "k");
  EXPECT_EQ(toks[2].kind, TokKind::LBrace);
  EXPECT_EQ(toks[3].kind, TokKind::KwParam);
  EXPECT_EQ(toks[5].kind, TokKind::Assign);
  EXPECT_EQ(toks[6].kind, TokKind::Int);
  EXPECT_EQ(toks[6].value, 8);
  EXPECT_EQ(toks.back().kind, TokKind::End);
}

TEST(Lexer, OperatorsAndRange) {
  auto toks = tokenize("0 .. n - 1 * / % ( ) [ ]");
  EXPECT_EQ(toks[1].kind, TokKind::DotDot);
  EXPECT_EQ(toks[3].kind, TokKind::Minus);
  EXPECT_EQ(toks[5].kind, TokKind::Star);
  EXPECT_EQ(toks[6].kind, TokKind::Slash);
  EXPECT_EQ(toks[7].kind, TokKind::Percent);
}

TEST(Lexer, CommentsBothStyles) {
  auto toks = tokenize("# hash comment\n// slash comment\nread");
  EXPECT_EQ(toks[0].kind, TokKind::KwRead);
}

TEST(Lexer, TracksLocations) {
  auto toks = tokenize("a\n  b");
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[1].loc.column, 3);
}

TEST(Lexer, Errors) {
  EXPECT_THROW(tokenize("a . b"), ParseError);
  EXPECT_THROW(tokenize("a $ b"), ParseError);
  EXPECT_THROW(tokenize("999999999999999999999999"), ParseError);
}

const char* kMini = R"(
kernel mini {
  param N = 4;
  array A[N][N];
  loop i = 0 .. N - 1 {
    loop j = 0 .. N - 1 {
      read A[i][j];
      write A[j][i];
    }
  }
}
)";

TEST(Parser, MiniKernelShape) {
  KernelDecl k = parseKernel(kMini);
  EXPECT_EQ(k.name, "mini");
  ASSERT_EQ(k.params.size(), 1u);
  EXPECT_EQ(k.params[0].name, "N");
  ASSERT_EQ(k.arrays.size(), 1u);
  EXPECT_EQ(k.arrays[0].dims.size(), 2u);
  ASSERT_EQ(k.nests.size(), 1u);
  ASSERT_TRUE(k.nests[0]->innerLoop);
  EXPECT_EQ(k.nests[0]->innerLoop->body.size(), 2u);
  EXPECT_FALSE(k.nests[0]->innerLoop->body[0].isWrite);
  EXPECT_TRUE(k.nests[0]->innerLoop->body[1].isWrite);
}

TEST(Parser, StepClause) {
  KernelDecl k = parseKernel(
      "kernel s { array A[10]; loop i = 0 .. 9 step 2 { read A[i]; } }");
  ASSERT_TRUE(k.nests[0]->step);
}

TEST(Parser, ErrorsWithLocation) {
  EXPECT_THROW(parseKernel("kernel {}"), ParseError);                // no name
  EXPECT_THROW(parseKernel("kernel k { loop i = 0 .. 3 { } }"),      // empty body
               ParseError);
  EXPECT_THROW(parseKernel("kernel k { array A; }"), ParseError);    // no dims
  EXPECT_THROW(parseKernel("kernel k { read A[0]; }"), ParseError);  // stray stmt
  EXPECT_THROW(parseKernel("kernel k { param x = ; }"), ParseError);
  try {
    parseKernel("kernel k {\n  param x = ;\n}");
  } catch (const ParseError& e) {
    EXPECT_EQ(e.loc().line, 2);
  }
}

TEST(Parser, ExpressionPrecedence) {
  // 2 + 3 * 4 must parse as 2 + (3*4): check via sema evaluation.
  auto p = dr::frontend::compileKernel(
      "kernel e { param v = 2 + 3 * 4; array A[v]; "
      "loop i = 0 .. v - 1 { read A[i]; } }");
  EXPECT_EQ(p.params.at("v"), 14);
  EXPECT_EQ(p.signals[0].dims[0], 14);
}

TEST(Sema, ParamsEvaluateInOrder) {
  auto p = compileKernel(
      "kernel k { param a = 3; param b = a * a - 1; array A[b]; "
      "loop i = 0 .. b - 1 { read A[i]; } }");
  EXPECT_EQ(p.params.at("b"), 8);
}

TEST(Sema, NegativeBoundsAndUnary) {
  auto p = compileKernel(
      "kernel k { param m = 8; array A[2*m]; "
      "loop i = -m .. m - 1 { read A[i + m]; } }");
  EXPECT_EQ(p.nests[0].loops[0].begin, -8);
  EXPECT_EQ(p.nests[0].loops[0].end, 7);
  EXPECT_EQ(p.nests[0].body[0].indices[0].constantTerm(), 8);
}

TEST(Sema, AffineLowering) {
  auto p = compileKernel(
      "kernel k { param n = 8; array A[64][64]; "
      "loop i = 0 .. 7 { loop j = 0 .. 7 { read A[n*i + j][2*j - i]; } } }");
  const auto& idx = p.nests[0].body[0].indices;
  EXPECT_EQ(idx[0].coeff(0), 8);
  EXPECT_EQ(idx[0].coeff(1), 1);
  EXPECT_EQ(idx[1].coeff(0), -1);
  EXPECT_EQ(idx[1].coeff(1), 2);
}

TEST(Sema, RejectsNonAffine) {
  EXPECT_THROW(compileKernel("kernel k { array A[64]; "
                             "loop i = 0 .. 7 { loop j = 0 .. 7 { "
                             "read A[i * j]; } } }"),
               SemaError);
  EXPECT_THROW(compileKernel("kernel k { array A[64]; "
                             "loop i = 1 .. 7 { read A[8 / i]; } }"),
               SemaError);
}

TEST(Sema, CollectsMultipleErrors) {
  try {
    compileKernel(
        "kernel k { array A[4]; loop i = 0 .. 3 { read B[i]; read C[i]; } }");
    FAIL() << "should have thrown";
  } catch (const SemaError& e) {
    EXPECT_EQ(e.diagnostics().size(), 2u);
  }
}

TEST(Sema, NameErrors) {
  EXPECT_THROW(compileKernel("kernel k { param a = 1; param a = 2; "
                             "array A[4]; loop i = 0 .. 3 { read A[i]; } }"),
               SemaError);
  EXPECT_THROW(compileKernel("kernel k { param a = 1; array A[4]; "
                             "loop a = 0 .. 3 { read A[a]; } }"),
               SemaError);  // iterator shadows param
  EXPECT_THROW(compileKernel("kernel k { array A[unknown]; "
                             "loop i = 0 .. 3 { read A[i]; } }"),
               SemaError);
}

TEST(Sema, BoundErrors) {
  EXPECT_THROW(compileKernel("kernel k { array A[4]; "
                             "loop i = 3 .. 0 { read A[i]; } }"),
               SemaError);  // empty range
  EXPECT_THROW(compileKernel("kernel k { array A[4]; "
                             "loop i = 0 .. 3 step 0 { read A[i]; } }"),
               SemaError);
  EXPECT_THROW(compileKernel("kernel k { array A[0]; "
                             "loop i = 0 .. 3 { read A[i]; } }"),
               SemaError);  // zero-extent array
}

TEST(Sema, DimensionArity) {
  EXPECT_THROW(compileKernel("kernel k { array A[4][4]; "
                             "loop i = 0 .. 3 { read A[i]; } }"),
               SemaError);
}

TEST(Sema, BitsClause) {
  auto p = compileKernel("kernel k { array A[4] bits 16; "
                         "loop i = 0 .. 3 { read A[i]; } }");
  EXPECT_EQ(p.signals[0].elementBits, 16);
  EXPECT_THROW(compileKernel("kernel k { array A[4] bits 0; "
                             "loop i = 0 .. 3 { read A[i]; } }"),
               SemaError);
}

TEST(Sema, DecrementalStep) {
  auto p = compileKernel("kernel k { array A[8]; "
                         "loop i = 7 .. 0 step 0 - 1 { read A[i]; } }");
  EXPECT_EQ(p.nests[0].loops[0].step, -1);
  EXPECT_EQ(p.nests[0].loops[0].tripCount(), 8);
}

TEST(Frontend, MultipleNests) {
  auto p = compileKernel(
      "kernel k { array A[8]; "
      "loop i = 0 .. 7 { read A[i]; } "
      "loop j = 0 .. 3 { read A[2*j]; } }");
  EXPECT_EQ(p.nests.size(), 2u);
  EXPECT_EQ(p.totalAccessCount(), 12);
}

TEST(Frontend, CompileKernelFileMissing) {
  EXPECT_THROW(compileKernelFile("/nonexistent/file.krn"),
               dr::support::ContractViolation);
}

// --- error recovery -------------------------------------------------------

TEST(Recovery, ReportsMultipleSyntaxErrorsWithLocations) {
  // Three independent problems on three lines: a malformed param, a
  // dimensionless array, and an empty loop body. One recovering pass must
  // surface all of them, each at its own source location.
  const char* src = R"(kernel broken {
  param x = ;
  array A;
  loop i = 0 .. 3 { }
})";
  std::vector<dr::support::Diagnostic> errors;
  (void)parseKernelRecover(src, errors);
  ASSERT_GE(errors.size(), 3u);
  EXPECT_TRUE(errors[0].location.starts_with("2:")) << errors[0].str();
  EXPECT_TRUE(errors[1].location.starts_with("3:")) << errors[1].str();
  EXPECT_TRUE(errors[2].location.starts_with("4:")) << errors[2].str();
  // Distinct messages, not one error cascading.
  EXPECT_NE(errors[0].message, errors[1].message);
}

TEST(Recovery, LexicalAndSyntacticErrorsInOnePass) {
  const char* src = R"(kernel k {
  param n = 99999999999999999999999999;
  param m $ 3;
  array A[4];
  loop i = 0 .. 3 { read A[i]; }
})";
  std::vector<dr::support::Diagnostic> errors;
  KernelDecl k = parseKernelRecover(src, errors);
  ASSERT_GE(errors.size(), 2u);  // overflow literal + stray '$'
  // Recovery kept the healthy items.
  EXPECT_EQ(k.arrays.size(), 1u);
  EXPECT_EQ(k.nests.size(), 1u);
}

TEST(Recovery, CleanInputHasNoDiagnosticsAndMatchesThrowingParse) {
  std::vector<dr::support::Diagnostic> errors;
  KernelDecl k = parseKernelRecover(kMini, errors);
  EXPECT_TRUE(errors.empty());
  EXPECT_EQ(k.name, "mini");
  EXPECT_EQ(k.nests.size(), 1u);
}

TEST(Recovery, NestingTooDeepIsAParseErrorNotACrash) {
  std::string deep = "kernel k { param x = ";
  for (int i = 0; i < 5000; ++i) deep += '(';
  deep += '1';
  for (int i = 0; i < 5000; ++i) deep += ')';
  deep += "; array A[4]; loop i = 0 .. 3 { read A[i]; } }";
  EXPECT_THROW(parseKernel(deep), ParseError);
  std::vector<dr::support::Diagnostic> errors;
  (void)parseKernelRecover(deep, errors);
  EXPECT_FALSE(errors.empty());
}

// --- checked compile facade -----------------------------------------------

TEST(Checked, SyntaxErrorsComeBackAsInvalidInput) {
  auto r = compileKernelChecked("kernel k { param x = ; array A; }");
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), dr::support::StatusCode::InvalidInput);
  EXPECT_GE(r.status().diagnostics().size(), 2u);
}

TEST(Checked, SemaErrorsComeBackAsInvalidInput) {
  // Parses cleanly; both the unknown name and the non-affine product are
  // semantic problems.
  auto r = compileKernelChecked(
      "kernel k { array A[8]; "
      "loop i = 0 .. 7 { read A[i * i + q]; } }");
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), dr::support::StatusCode::InvalidInput);
  EXPECT_GE(r.status().diagnostics().size(), 2u);
}

TEST(Checked, ConstantOverflowIsStatusNotThrow) {
  auto r = compileKernelChecked(
      "kernel k { param h = 4611686018427387904 * 4; array A[h]; "
      "loop i = 0 .. 3 { read A[i]; } }");
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), dr::support::StatusCode::Overflow);
}

TEST(Checked, ValidKernelCompiles) {
  auto r = compileKernelChecked(kMini);
  ASSERT_TRUE(r.hasValue());
  EXPECT_EQ(r->name, "mini");
  EXPECT_EQ(r->nests.size(), 1u);
}

TEST(Checked, MissingFileIsIoError) {
  auto r = compileKernelFileChecked("/nonexistent/file.krn");
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), dr::support::StatusCode::IoError);
}

}  // namespace
