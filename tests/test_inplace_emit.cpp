// Tests for the in-place mapping step (DTSE step 6) and the kernel-source
// emitter (Program -> .krn round trip).

#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "helpers.h"
#include "inplace/inplace.h"
#include "kernels/conv2d.h"
#include "kernels/matmul.h"
#include "kernels/motion_estimation.h"
#include "kernels/susan.h"
#include "kernels/wavelet.h"
#include "loopir/emit_source.h"
#include "loopir/permute.h"
#include "support/contracts.h"
#include "trace/walker.h"

namespace {

using dr::inplace::InplaceResult;
using dr::inplace::isLegalWindow;
using dr::inplace::minModuloWindow;
using dr::support::i64;
using dr::trace::Trace;

Trace makeTrace(std::initializer_list<i64> addrs) {
  Trace t;
  t.addresses = addrs;
  return t;
}

TEST(Inplace, SlidingWindowCompresses) {
  // A[x + dx], dx in [0, 2]: element x dies at (x, 0), before x+2 is
  // born at (x, 2), so only two elements are ever live together and two
  // slots store the whole 22-element address range.
  auto p = dr::test::genericDoubleLoop({0, 19, 0, 2}, 1, 1);
  dr::trace::AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  InplaceResult r = minModuloWindow(t);
  EXPECT_EQ(r.addressRange, 22);
  EXPECT_EQ(r.maxLive, 2);
  EXPECT_EQ(r.window, 2);
  EXPECT_LT(r.compression(), 0.2);
  EXPECT_TRUE(isLegalWindow(t, 2));
  EXPECT_FALSE(isLegalWindow(t, 1));
}

TEST(Inplace, WindowCanExceedMaxLive) {
  // Two elements at distance 4 live simultaneously: windows 1, 2 and 4
  // collide (4 mod W == 0); the smallest legal window is 3.
  Trace t = makeTrace({0, 4, 0, 4});
  InplaceResult r = minModuloWindow(t);
  EXPECT_EQ(r.maxLive, 2);
  EXPECT_EQ(r.window, 3);
  EXPECT_FALSE(isLegalWindow(t, 2));
  EXPECT_FALSE(isLegalWindow(t, 4));
  EXPECT_TRUE(isLegalWindow(t, 5));
}

TEST(Inplace, SequentialScanNeedsOneSlot) {
  Trace t;
  for (i64 i = 0; i < 50; ++i) t.addresses.push_back(i * 3);
  InplaceResult r = minModuloWindow(t);
  EXPECT_EQ(r.maxLive, 1);
  EXPECT_EQ(r.window, 1);
}

TEST(Inplace, FullyLiveSignalGetsNoCompression) {
  // First and last access of every element straddle the whole trace.
  Trace t = makeTrace({0, 1, 2, 3, 0, 1, 2, 3});
  InplaceResult r = minModuloWindow(t);
  EXPECT_EQ(r.window, 4);
  EXPECT_DOUBLE_EQ(r.compression(), 1.0);
}

TEST(Inplace, EmptyAndBounds) {
  Trace empty;
  InplaceResult r = minModuloWindow(empty);
  EXPECT_EQ(r.window, 1);
  EXPECT_THROW(isLegalWindow(empty, 0), dr::support::ContractViolation);
}

TEST(Inplace, LegalWindowMonotoneAboveResult) {
  // Not every window above the minimum is legal (divisor collisions), but
  // the address range always is, and the found window always is.
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 2);
  dr::trace::AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  InplaceResult r = minModuloWindow(t);
  EXPECT_TRUE(isLegalWindow(t, r.window));
  EXPECT_TRUE(isLegalWindow(t, r.addressRange));
  EXPECT_GE(r.window, r.maxLive);
}

// ---------------------------------------------------------------------------
// Kernel-source round trips.

void expectRoundTrip(const dr::loopir::Program& p) {
  std::string src = dr::loopir::toKernelSource(p);
  dr::loopir::Program q = dr::frontend::compileKernel(src);
  ASSERT_EQ(q.signals.size(), p.signals.size()) << src;
  ASSERT_EQ(q.nests.size(), p.nests.size()) << src;
  for (std::size_t s = 0; s < p.signals.size(); ++s) {
    EXPECT_EQ(q.signals[s].name, p.signals[s].name);
    EXPECT_EQ(q.signals[s].dims, p.signals[s].dims);
    EXPECT_EQ(q.signals[s].elementBits, p.signals[s].elementBits);
  }
  dr::trace::AddressMap mp(p), mq(q);
  for (std::size_t s = 0; s < p.signals.size(); ++s) {
    dr::trace::TraceFilter f;
    f.signal = static_cast<int>(s);
    f.includeReads = true;
    f.includeWrites = true;
    Trace tp = dr::trace::collectTrace(p, mp, f);
    Trace tq = dr::trace::collectTrace(q, mq, f);
    ASSERT_EQ(tp.length(), tq.length()) << src;
    for (i64 i = 0; i < tp.length(); ++i)
      ASSERT_EQ(tp.addresses[static_cast<std::size_t>(i)],
                tq.addresses[static_cast<std::size_t>(i)])
          << src;
  }
}

TEST(EmitSource, BuiltinKernelsRoundTrip) {
  expectRoundTrip(dr::kernels::motionEstimation({16, 16, 4, 2}));
  expectRoundTrip(dr::kernels::motionEstimation({16, 16, 4, 2, true}));
  expectRoundTrip(dr::kernels::susan({16, 16}));
  expectRoundTrip(dr::kernels::conv2d({12, 12, 1}));
  expectRoundTrip(dr::kernels::matmul({5, 7}));
  expectRoundTrip(dr::kernels::waveletLifting({3, 12}));
}

TEST(EmitSource, NegativeBoundsAndStrides) {
  auto p = dr::test::genericDoubleLoop({-3, 5, -2, 2}, 2, -3, -7);
  p.nests[0].loops[0].step = 2;
  p.nests[0].loops[0].end = 5;
  expectRoundTrip(p);
  // Decremental loop.
  auto q = dr::test::genericDoubleLoop({0, 4, 0, 4}, 1, 1);
  q.nests[0].loops[1] = dr::loopir::Loop{"k", 4, 0, -1};
  expectRoundTrip(q);
}

TEST(EmitSource, PermutedNestRoundTrips) {
  auto p = dr::kernels::matmul({4, 6});
  p.nests[0] = dr::loopir::permuted(p.nests[0], {2, 0, 1});
  expectRoundTrip(p);
}

TEST(EmitSource, TextShape) {
  auto p = dr::kernels::matmul({4, 6});
  std::string src = dr::loopir::toKernelSource(p);
  EXPECT_NE(src.find("kernel matmul {"), std::string::npos);
  EXPECT_NE(src.find("array A[4][6] bits 32;"), std::string::npos);
  EXPECT_NE(src.find("loop i = 0 .. 3 {"), std::string::npos);
  EXPECT_NE(src.find("read B[k][j];"), std::string::npos);
}

}  // namespace

// ---------------------------------------------------------------------------
// DTSE step 6 closing the loop on the Fig. 8 single-assignment variant:
// "the final copy-candidate size and implementation is determined by the
// Inplace mapping step afterwards" (paper Section 6.1). The enlarged
// single-assignment copy A_sub[c'][((jU-jL)/c')*b' + kRANGE] must be
// compressible back to (about) the ring size by modulo in-place mapping.

#include "analytic/pair_analysis.h"
#include "codegen/templates.h"

namespace {

TEST(Inplace, CompressesSingleAssignmentCopyBackToRing) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 4}, 1, 1);
  auto m = dr::analytic::analyzePair(p.nests[0], p.nests[0].body[0], 0);
  ASSERT_TRUE(m.hasReuse);

  dr::codegen::TemplateSpec spec;
  spec.singleAssignment = true;
  auto code = dr::codegen::generateCopyTemplate(p, 0, 0, m, spec);
  // Enlarged copy: ((jU-jL)/c')*b' + kRANGE columns, written once per slot.
  EXPECT_EQ(code.copyCols, 9 + 5);

  // Slot trace of the enlarged copy: col = kk + (jj/c')*b' (no modulo).
  Trace slots;
  for (i64 j = 0; j <= 9; ++j)
    for (i64 k = 0; k <= 4; ++k) slots.addresses.push_back(k + j);

  InplaceResult r = minModuloWindow(slots);
  EXPECT_EQ(r.addressRange, code.copyCols);
  // In-place mapping recovers a buffer no larger than the analytic ring
  // (+1 boundary slot), an order of magnitude below the enlarged copy.
  EXPECT_LE(r.window, m.AMax + 1);
  EXPECT_GE(r.window, r.maxLive);
}

}  // namespace
