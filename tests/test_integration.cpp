// Cross-module integration and robustness tests: frontend-to-explorer
// round trips, normalization trace equality under random strides,
// address-map injectivity, OPT bypass behaviour, and frontend fuzzing
// (corrupted sources must diagnose, never crash).

#include <gtest/gtest.h>

#include <set>

#include "explorer/explorer.h"
#include "frontend/frontend.h"
#include "frontend/lexer.h"
#include "frontend/sema.h"
#include "helpers.h"
#include "hierarchy/assign.h"
#include "hierarchy/collapse.h"
#include "kernels/motion_estimation.h"
#include "loopir/normalize.h"
#include "scbd/scbd.h"
#include "simcore/buffer_sim.h"
#include "support/rng.h"
#include "trace/lifetime.h"
#include "trace/single_assign.h"
#include "trace/walker.h"

namespace {

using dr::support::i64;
using dr::support::Rng;

// ---------------------------------------------------------------------------
// Normalization property: the access trace is invariant under loop
// normalization, for random strides and directions.

class NormalizeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NormalizeProperty, TraceInvariant) {
  Rng rng(GetParam());
  dr::loopir::Program p;
  int sig = dr::loopir::addSignal(p, "A", {4096}, 8);

  dr::loopir::LoopNest nest;
  int depth = static_cast<int>(rng.uniform(1, 3));
  for (int d = 0; d < depth; ++d) {
    dr::loopir::Loop loop;
    loop.name = "i" + std::to_string(d);
    i64 a = rng.uniform(-10, 10);
    i64 b = rng.uniform(-10, 10);
    i64 step = rng.uniform(1, 4);
    if (rng.uniform(0, 1)) {
      loop.begin = std::min(a, b);
      loop.end = std::max(a, b);
      loop.step = step;
    } else {
      loop.begin = std::max(a, b);
      loop.end = std::min(a, b);
      loop.step = -step;
    }
    nest.loops.push_back(loop);
  }
  dr::loopir::ArrayAccess acc;
  acc.signal = sig;
  acc.kind = dr::loopir::AccessKind::Read;
  dr::loopir::AffineExpr e(rng.uniform(-5, 5));
  for (int d = 0; d < depth; ++d) e.setCoeff(d, rng.uniform(-4, 4));
  acc.indices = {e};
  nest.body.push_back(acc);
  p.nests.push_back(nest);

  auto n = dr::loopir::normalized(p);
  ASSERT_TRUE(dr::loopir::isNormalized(n));
  dr::trace::AddressMap mp(p), mn(n);
  auto tp = dr::trace::readTrace(p, mp, 0);
  auto tn = dr::trace::readTrace(n, mn, 0);
  ASSERT_EQ(tp.length(), tn.length());
  // Addresses may shift by a constant (different padded bases), so
  // compare deltas against the first access.
  for (i64 i = 1; i < tp.length(); ++i)
    ASSERT_EQ(tp.addresses[static_cast<std::size_t>(i)] - tp.addresses[0],
              tn.addresses[static_cast<std::size_t>(i)] - tn.addresses[0])
        << "at access " << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizeProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------------------------------
// AddressMap injectivity: distinct multi-dimensional indices map to
// distinct flat addresses, even with halo accesses.

class AddressMapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AddressMapProperty, InjectiveOverAccessedIndices) {
  Rng rng(GetParam());
  dr::loopir::Program p;
  int dims = static_cast<int>(rng.uniform(1, 3));
  std::vector<i64> extents;
  for (int d = 0; d < dims; ++d) extents.push_back(rng.uniform(2, 6));
  int sig = dr::loopir::addSignal(p, "A", extents, 8);

  dr::loopir::LoopNest nest;
  nest.loops = {dr::loopir::Loop{"j", 0, rng.uniform(2, 6), 1},
                dr::loopir::Loop{"k", 0, rng.uniform(2, 6), 1}};
  dr::loopir::ArrayAccess acc;
  acc.signal = sig;
  acc.kind = dr::loopir::AccessKind::Read;
  for (int d = 0; d < dims; ++d) {
    dr::loopir::AffineExpr e(rng.uniform(-3, 3));
    e.setCoeff(0, rng.uniform(-2, 2));
    e.setCoeff(1, rng.uniform(-2, 2));
    acc.indices.push_back(e);
  }
  nest.body.push_back(acc);
  p.nests.push_back(nest);

  dr::trace::AddressMap map(p);
  // Walk and record (index tuple -> address); same tuple must give the
  // same address, different tuples different addresses.
  std::map<std::vector<i64>, i64> seen;
  std::set<i64> addrs;
  std::vector<i64> iters(2);
  for (i64 j = nest.loops[0].begin; j <= nest.loops[0].end; ++j)
    for (i64 k = nest.loops[1].begin; k <= nest.loops[1].end; ++k) {
      iters[0] = j;
      iters[1] = k;
      std::vector<i64> idx;
      for (const auto& e : acc.indices) idx.push_back(e.evaluate(iters));
      i64 addr = map.address(sig, idx);
      auto [it, inserted] = seen.try_emplace(idx, addr);
      if (!inserted) {
        ASSERT_EQ(it->second, addr);
      } else {
        ASSERT_TRUE(addrs.insert(addr).second)
            << "two index tuples alias one address";
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AddressMapProperty,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// OPT bypass capability (MIN): a streaming access must not evict a hot
// element from a tiny buffer.

TEST(OptBypass, HotElementSurvivesStream) {
  // H s1 H s2 H s3 ... : capacity 1 keeps H resident; every s misses.
  dr::trace::Trace t;
  for (i64 i = 0; i < 50; ++i) {
    t.addresses.push_back(1000);    // hot
    t.addresses.push_back(i);       // stream
  }
  auto r = dr::simcore::simulateOpt(t, 1);
  EXPECT_EQ(r.misses, 1 + 50);  // one compulsory hot miss + the stream
  EXPECT_EQ(r.hits, 49);
}

// ---------------------------------------------------------------------------
// Frontend fuzzing: randomly corrupted kernels must raise diagnostics,
// never crash or accept garbage silently as something else.

class FrontendFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FrontendFuzz, CorruptedSourceDiagnosesCleanly) {
  const std::string valid = dr::kernels::motionEstimationSource({16, 16, 4, 2});
  Rng rng(GetParam());
  const std::string junk = "{}[]()=;.+-*/%#xyz019 \n\"";
  for (int trial = 0; trial < 50; ++trial) {
    std::string s = valid;
    int edits = static_cast<int>(rng.uniform(1, 4));
    for (int e = 0; e < edits; ++e) {
      std::size_t pos =
          static_cast<std::size_t>(rng.uniform(0, static_cast<i64>(s.size()) - 1));
      switch (rng.uniform(0, 2)) {
        case 0:  // replace
          s[pos] = junk[static_cast<std::size_t>(
              rng.uniform(0, static_cast<i64>(junk.size()) - 1))];
          break;
        case 1:  // delete
          s.erase(pos, 1);
          break;
        default:  // insert
          s.insert(pos, 1,
                   junk[static_cast<std::size_t>(
                       rng.uniform(0, static_cast<i64>(junk.size()) - 1))]);
      }
    }
    try {
      auto p = dr::frontend::compileKernel(s);
      // Surviving a corruption is fine (e.g. a digit changed inside a
      // constant) as long as the result is still structurally valid.
      EXPECT_TRUE(dr::loopir::validate(p).empty());
    } catch (const dr::frontend::ParseError&) {
    } catch (const dr::frontend::SemaError&) {
    } catch (const dr::support::ContractViolation&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontendFuzz,
                         ::testing::Values(101, 202, 303, 404, 505));

// ---------------------------------------------------------------------------
// End-to-end: kernel text -> explorer -> assignment -> collapse -> SCBD.

TEST(EndToEnd, KernelTextToPhysicalMapping) {
  auto p = dr::frontend::compileKernel(R"(
    kernel pipeline {
      param N = 24;
      array A[N][N] bits 8;
      array w[3][3] bits 16;
      loop y = 1 .. N - 2 {
        loop x = 1 .. N - 2 {
          loop dy = -1 .. 1 {
            loop dx = -1 .. 1 {
              read A[y + dy][x + dx];
              read w[dy + 1][dx + 1];
            } } } }
    })");

  std::vector<std::vector<dr::hierarchy::SignalOption>> options;
  std::vector<dr::explorer::SignalExploration> explorations;
  for (const char* name : {"A", "w"}) {
    auto ex = dr::explorer::exploreSignal(p, p.findSignal(name));
    ASSERT_FALSE(ex.pareto.empty()) << name;
    std::vector<dr::hierarchy::SignalOption> opts;
    for (std::size_t i = 0; i < ex.pareto.size(); ++i)
      opts.push_back({ex.pareto[i].cost.power, ex.pareto[i].cost.onChipSize,
                      static_cast<int>(i)});
    options.push_back(std::move(opts));
    explorations.push_back(std::move(ex));
  }

  auto best = dr::hierarchy::assignLayers(options, 256);
  ASSERT_TRUE(best.feasible);
  EXPECT_LE(best.totalSize, 256);
  // The coefficient array w is tiny and heavily reused: a non-flat option
  // must win for it under any reasonable budget.
  const auto& wDesign =
      explorations[1].pareto[static_cast<std::size_t>(best.choice[1])];
  EXPECT_GT(wDesign.chain.depth(), 0);

  // Collapse the A chain onto a two-layer scratchpad and check bandwidth.
  const auto& aDesign =
      explorations[0].pareto[static_cast<std::size_t>(best.choice[0])];
  if (aDesign.chain.depth() > 0) {
    dr::hierarchy::PhysicalHierarchy phys;
    phys.layerSizes = {512, 32};
    auto mapped = dr::hierarchy::collapseOnto(aDesign.chain, phys);
    EXPECT_TRUE(mapped.validate().empty());
    auto loads = dr::scbd::chainLoads(mapped);
    EXPECT_GE(loads.size(), 1u);
    EXPECT_GE(dr::scbd::minimalCycleBudget(
                  mapped, std::vector<i64>(loads.size(), 1)),
              1);
  }
}

TEST(EndToEnd, LifetimeBoundsMatchExecutorOccupancy) {
  // The in-place lower bound (max simultaneously live elements, DTSE step
  // 6 flavor) can never exceed the analytic copy size for the window
  // pattern, and the OPT saturation size can never exceed either.
  auto p = dr::test::genericDoubleLoop({0, 19, 0, 7}, 1, 1);
  dr::trace::AddressMap map(p);
  auto t = dr::trace::readTrace(p, map, 0);
  auto m = dr::analytic::analyzePair(p.nests[0], p.nests[0].body[0], 0);
  ASSERT_TRUE(m.hasReuse);
  auto lifetimes = dr::trace::analyzeLifetimes(t);
  EXPECT_LE(dr::simcore::optSaturationSize(t), m.AMax);
  EXPECT_GE(lifetimes.maxLive, dr::simcore::optSaturationSize(t));
}

}  // namespace

// ---------------------------------------------------------------------------
// Producer/consumer programs: an intermediate signal written by one nest
// and read by the next (the shape of the paper's multi-stage motivating
// applications, e.g. the H.263 decoder pipeline).

namespace {

TEST(EndToEnd, IntermediateSignalAcrossNests) {
  auto p = dr::frontend::compileKernel(R"(
    kernel producer_consumer {
      param N = 16;
      array src[N][N] bits 8;
      array T[N][N] bits 16;
      loop y = 0 .. N - 1 {           # stage 1: produce T
        loop x = 0 .. N - 1 {
          read src[y][x];
          write T[y][x];
        }
      }
      loop y2 = 1 .. N - 2 {          # stage 2: 3x1 vertical filter on T
        loop x2 = 0 .. N - 1 {
          loop dy = -1 .. 1 {
            read T[y2 + dy][x2];
          }
        }
      }
    })");

  // Stage 1 writes each T element exactly once: single assignment holds.
  dr::trace::AddressMap map(p);
  EXPECT_TRUE(dr::trace::checkSingleAssignment(p, map).empty());

  // The reuse exploration only sees stage 2's reads of T.
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("T"));
  EXPECT_EQ(ex.Ctot, 14LL * 16 * 3);
  ASSERT_FALSE(ex.combinedPoints.empty());
  ASSERT_FALSE(ex.pareto.empty());

  // The vertical 3-tap filter reuses two of three reads: max F_R ~ 3.
  double maxFr = 0;
  for (const auto& pt : ex.combinedPoints) maxFr = std::max(maxFr, pt.FR);
  EXPECT_GT(maxFr, 1.4);

  // Lifetime analysis of T (write-to-last-read): with the stages fully
  // serialized and every row read back (y2+dy spans 0..N-1), the whole T
  // is simultaneously live — fusing the stages, not in-place mapping, is
  // what would shrink this buffer.
  dr::trace::TraceFilter all;
  all.signal = p.findSignal("T");
  all.includeReads = true;
  all.includeWrites = true;
  auto t = dr::trace::collectTrace(p, map, all);
  auto stats = dr::trace::analyzeLifetimes(t);
  EXPECT_EQ(stats.maxLive, 16 * 16);  // every row is read back in stage 2
}

}  // namespace

// ---------------------------------------------------------------------------
// The umbrella header compiles and exposes the whole public API.

#include "datareuse.h"

namespace {

TEST(UmbrellaHeader, WholeApiReachable) {
  auto p = dr::kernels::conv2d({12, 12, 1});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("img"));
  std::string md = dr::report::signalReport(p, ex);
  EXPECT_FALSE(md.empty());
  EXPECT_FALSE(dr::loopir::toKernelSource(p).empty());
}

}  // namespace
