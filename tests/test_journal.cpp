// Journal durability semantics (support/journal.h): CRC-framed records,
// commit markers sealing the durable prefix, torn-tail truncation on
// load, resume-and-append, and the single-writer/multi-appender locking.
// The kill-at-every-byte sweep is the core property: any prefix of a
// journal file parses to exactly the points its last commit sealed.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "support/journal.h"
#include "support/parallel.h"

namespace {

using dr::support::i64;
using dr::support::JournalContents;
using dr::support::JournalHeader;
using dr::support::JournalMeta;
using dr::support::JournalPoint;
using dr::support::JournalWriter;
using dr::support::loadJournal;
using dr::support::parseJournal;
using dr::support::StatusCode;

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string readAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

void writeAllBytes(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << bytes;
}

JournalPoint point(i64 size, i64 writes, i64 reads, std::uint8_t fidelity) {
  JournalPoint p;
  p.size = size;
  p.writes = writes;
  p.reads = reads;
  p.fidelity = fidelity;
  return p;
}

TEST(Journal, RoundTripPreservesHeaderMetaAndPoints) {
  const std::string path = tempPath("dr_journal_roundtrip.drj");
  JournalHeader header;
  header.configHash = 0xFEEDFACECAFEBEEFULL;
  header.description = "signal=Old engine=0";

  auto w = JournalWriter::create(path, header);
  ASSERT_TRUE(w.hasValue()) << w.status().str();
  JournalMeta meta;
  meta.Ctot = 4096;
  meta.distinct = 1521;
  meta.fidelity = 1;
  meta.folded = 1;
  meta.totalEvents = 4096;
  meta.simulatedEvents = 512;
  meta.period = 64;
  meta.repeatCount = 8;
  ASSERT_TRUE(w->appendMeta(meta).isOk());
  std::vector<JournalPoint> pts = {point(1, 4096, 4096, 0),
                                   point(12, 600, 4096, 0),
                                   point(1521, 1521, 4096, 0)};
  for (const JournalPoint& p : pts) ASSERT_TRUE(w->appendPoint(p).isOk());
  EXPECT_EQ(w->pointsAppended(), 3);
  ASSERT_TRUE(w->close().isOk());
  // The temp staging file never survives a successful create.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());

  auto loaded = loadJournal(path);
  ASSERT_TRUE(loaded.hasValue()) << loaded.status().str();
  EXPECT_EQ(loaded->header, header);
  ASSERT_TRUE(loaded->hasMeta);
  EXPECT_EQ(loaded->meta, meta);
  ASSERT_EQ(loaded->points.size(), 3u);
  for (std::size_t i = 0; i < pts.size(); ++i)
    EXPECT_EQ(loaded->points[i], pts[i]) << "point " << i;
  EXPECT_EQ(loaded->droppedTailBytes, 0);
  EXPECT_GE(loaded->commitCount, 2);  // header commit + data commits
  std::remove(path.c_str());
}

TEST(Journal, EveryFilePrefixParsesToItsCommittedPoints) {
  // Kill-at-every-byte: chop the journal at every possible length. Either
  // no commit fits (parse error, a clean restart) or the parse returns
  // exactly the points sealed by the last commit inside the prefix —
  // never a torn record, never a point the commit marker didn't cover.
  const std::string path = tempPath("dr_journal_prefix.drj");
  auto w = JournalWriter::create(path, JournalHeader{42, "prefix sweep"});
  ASSERT_TRUE(w.hasValue()) << w.status().str();
  for (i64 i = 0; i < 5; ++i)
    ASSERT_TRUE(w->appendPoint(point(i + 1, 10 * (i + 1), 100, 0)).isOk());
  ASSERT_TRUE(w->close().isOk());
  const std::string bytes = readAll(path);
  ASSERT_GT(bytes.size(), 0u);

  auto full = parseJournal(bytes);
  ASSERT_TRUE(full.hasValue());
  ASSERT_EQ(full->points.size(), 5u);
  EXPECT_EQ(full->committedBytes, static_cast<i64>(bytes.size()));

  std::size_t lastCount = 0;
  for (std::size_t len = 0; len <= bytes.size(); ++len) {
    auto parsed = parseJournal(bytes.substr(0, len));
    if (!parsed.hasValue()) {
      // Before the first commit is complete nothing is recoverable.
      EXPECT_EQ(lastCount, 0u) << "at prefix " << len;
      continue;
    }
    EXPECT_GE(parsed->points.size(), lastCount) << "at prefix " << len;
    lastCount = parsed->points.size();
    // Recovered points are always an exact prefix of the appended ones.
    for (std::size_t i = 0; i < parsed->points.size(); ++i)
      EXPECT_EQ(parsed->points[i].size, static_cast<i64>(i + 1));
    EXPECT_EQ(parsed->droppedTailBytes,
              static_cast<i64>(len) - parsed->committedBytes);
  }
  EXPECT_EQ(lastCount, 5u);
  std::remove(path.c_str());
}

TEST(Journal, CorruptedRecordTruncatesNeverReplays) {
  const std::string path = tempPath("dr_journal_corrupt.drj");
  auto w = JournalWriter::create(path, JournalHeader{7, "corrupt"});
  ASSERT_TRUE(w.hasValue());
  for (i64 i = 0; i < 4; ++i)
    ASSERT_TRUE(w->appendPoint(point(i + 1, 1, 1, 0)).isOk());
  ASSERT_TRUE(w->close().isOk());
  std::string bytes = readAll(path);

  // Flip one byte in the middle of the file: everything from the damaged
  // record on is dropped; the committed prefix before it survives.
  std::string damaged = bytes;
  damaged[damaged.size() / 2] =
      static_cast<char>(damaged[damaged.size() / 2] ^ 0x5A);
  auto parsed = parseJournal(damaged);
  if (parsed.hasValue()) {
    EXPECT_LT(parsed->points.size(), 4u);
    EXPECT_GT(parsed->droppedTailBytes, 0);
    for (std::size_t i = 0; i < parsed->points.size(); ++i)
      EXPECT_EQ(parsed->points[i].size, static_cast<i64>(i + 1));
  } else {
    EXPECT_EQ(parsed.status().code(), StatusCode::InvalidInput);
  }

  // Damage the header record itself: nothing is recoverable.
  std::string noHeader = bytes;
  noHeader[2] = static_cast<char>(noHeader[2] ^ 0xFF);
  auto rejected = parseJournal(noHeader);
  ASSERT_FALSE(rejected.hasValue());
  EXPECT_EQ(rejected.status().code(), StatusCode::InvalidInput);
  std::remove(path.c_str());
}

TEST(Journal, FormatVersionMismatchIsRejectedNotTruncated) {
  const std::string path = tempPath("dr_journal_version.drj");
  auto w = JournalWriter::create(path, JournalHeader{9, "v"});
  ASSERT_TRUE(w.hasValue());
  ASSERT_TRUE(w->close().isOk());
  std::string bytes = readAll(path);

  // Header record layout: type(1) len(4) | magic(4) version(4) ... The
  // version lives at offset 9; patching it needs the record CRC redone
  // (otherwise the parse reports corruption, not version skew).
  ASSERT_GT(bytes.size(), 13u);
  bytes[9] = 99;
  const std::uint32_t len = static_cast<std::uint32_t>(
      static_cast<unsigned char>(bytes[1]) |
      static_cast<unsigned char>(bytes[2]) << 8 |
      static_cast<unsigned char>(bytes[3]) << 16 |
      static_cast<unsigned char>(bytes[4]) << 24);
  const std::uint32_t crc = dr::support::crc32(bytes.data(), 5 + len);
  for (int i = 0; i < 4; ++i)
    bytes[5 + len + static_cast<std::size_t>(i)] =
        static_cast<char>(crc >> (8 * i));

  auto parsed = parseJournal(bytes);
  ASSERT_FALSE(parsed.hasValue());
  EXPECT_EQ(parsed.status().code(), StatusCode::InvalidInput);
  EXPECT_NE(parsed.status().str().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Journal, ResumeTruncatesTornTailThenAppends) {
  const std::string path = tempPath("dr_journal_resume.drj");
  auto w = JournalWriter::create(path, JournalHeader{11, "resume"});
  ASSERT_TRUE(w.hasValue());
  ASSERT_TRUE(w->appendPoint(point(1, 5, 50, 0)).isOk());
  ASSERT_TRUE(w->appendPoint(point(2, 4, 50, 0)).isOk());
  ASSERT_TRUE(w->close().isOk());

  // Crash debris past the last commit.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f << "torn tail garbage";
  }
  auto loaded = loadJournal(path);
  ASSERT_TRUE(loaded.hasValue());
  EXPECT_EQ(loaded->points.size(), 2u);
  EXPECT_GT(loaded->droppedTailBytes, 0);

  auto resumed = JournalWriter::resumeAt(path, *loaded);
  ASSERT_TRUE(resumed.hasValue()) << resumed.status().str();
  EXPECT_EQ(resumed->pointsAppended(), 2);
  ASSERT_TRUE(resumed->appendPoint(point(3, 3, 50, 0)).isOk());
  ASSERT_TRUE(resumed->close().isOk());

  auto reloaded = loadJournal(path);
  ASSERT_TRUE(reloaded.hasValue());
  ASSERT_EQ(reloaded->points.size(), 3u);
  EXPECT_EQ(reloaded->points[2].size, 3);
  EXPECT_EQ(reloaded->droppedTailBytes, 0);  // the tail is physically gone
  std::remove(path.c_str());
}

TEST(Journal, CreateReplacesOldJournalAtomically) {
  const std::string path = tempPath("dr_journal_replace.drj");
  {
    auto w = JournalWriter::create(path, JournalHeader{1, "old"});
    ASSERT_TRUE(w.hasValue());
    ASSERT_TRUE(w->appendPoint(point(1, 1, 1, 0)).isOk());
    ASSERT_TRUE(w->close().isOk());
  }
  auto w = JournalWriter::create(path, JournalHeader{2, "new"});
  ASSERT_TRUE(w.hasValue());
  ASSERT_TRUE(w->close().isOk());
  auto loaded = loadJournal(path);
  ASSERT_TRUE(loaded.hasValue());
  EXPECT_EQ(loaded->header.configHash, 2u);
  EXPECT_TRUE(loaded->points.empty());
  std::remove(path.c_str());
}

TEST(Journal, ConcurrentAppendsKeepTheRecordStreamClean) {
  // One shared writer, many appending tasks — the explorer's per-point
  // emission. Every record must land whole and every point exactly once.
  const std::string path = tempPath("dr_journal_concurrent.drj");
  constexpr i64 kPoints = 96;
  auto w = JournalWriter::create(path, JournalHeader{3, "concurrent"},
                                 /*commitEveryPoints=*/7);
  ASSERT_TRUE(w.hasValue());
  dr::support::parallelFor(kPoints, [&](i64 i) {
    ASSERT_TRUE(w->appendPoint(point(i, i + 1, kPoints, 0)).isOk());
  });
  ASSERT_TRUE(w->close().isOk());

  auto loaded = loadJournal(path);
  ASSERT_TRUE(loaded.hasValue()) << loaded.status().str();
  ASSERT_EQ(loaded->points.size(), static_cast<std::size_t>(kPoints));
  std::vector<bool> seen(static_cast<std::size_t>(kPoints), false);
  for (const JournalPoint& p : loaded->points) {
    ASSERT_GE(p.size, 0);
    ASSERT_LT(p.size, kPoints);
    EXPECT_FALSE(seen[static_cast<std::size_t>(p.size)]);
    seen[static_cast<std::size_t>(p.size)] = true;
    EXPECT_EQ(p.writes, p.size + 1);
  }
  EXPECT_EQ(loaded->droppedTailBytes, 0);
  std::remove(path.c_str());
}

TEST(Journal, ArbitraryBytesNeverCrashTheParser) {
  EXPECT_FALSE(parseJournal("").hasValue());
  EXPECT_FALSE(parseJournal("not a journal at all").hasValue());
  std::string zeros(4096, '\0');
  EXPECT_FALSE(parseJournal(zeros).hasValue());
  EXPECT_FALSE(loadJournal(::testing::TempDir() + "dr_journal_missing.drj")
                   .hasValue());
}

}  // namespace
