// Tests for the built-in test vehicles: structure, paper-quoted
// properties, and equivalence between the C++ builders and their
// kernel-language sources (the frontend must produce the same traces).

#include <gtest/gtest.h>

#include "frontend/frontend.h"
#include "kernels/conv2d.h"
#include "kernels/matmul.h"
#include "kernels/motion_estimation.h"
#include "kernels/susan.h"
#include "loopir/validate.h"
#include "support/contracts.h"
#include "trace/address_map.h"
#include "trace/walker.h"

namespace {

using dr::support::i64;
using dr::trace::AddressMap;
using dr::trace::readTrace;
using dr::trace::Trace;

void expectSameReadTrace(const dr::loopir::Program& a,
                         const dr::loopir::Program& b,
                         const std::string& signal) {
  AddressMap ma(a), mb(b);
  Trace ta = readTrace(a, ma, a.findSignal(signal));
  Trace tb = readTrace(b, mb, b.findSignal(signal));
  ASSERT_EQ(ta.length(), tb.length()) << signal;
  for (i64 i = 0; i < ta.length(); ++i)
    ASSERT_EQ(ta.addresses[static_cast<std::size_t>(i)],
              tb.addresses[static_cast<std::size_t>(i)])
        << signal << " diverges at access " << i;
}

TEST(MotionEstimationKernel, Structure) {
  auto p = dr::kernels::motionEstimation({});
  EXPECT_TRUE(dr::loopir::validate(p).empty());
  ASSERT_EQ(p.nests.size(), 1u);
  EXPECT_EQ(p.nests[0].depth(), 6);
  EXPECT_EQ(p.nests[0].iterationCount(), 18LL * 22 * 16 * 16 * 8 * 8);
  EXPECT_EQ(p.signals.size(), 2u);
  // The paper-quoted coefficient pattern for Old:
  const auto& oldAcc = p.nests[0].body[dr::kernels::oldAccessIndex()];
  EXPECT_EQ(oldAcc.indices[0].coeff(3), 0);  // 0*i4
  EXPECT_EQ(oldAcc.indices[0].coeff(4), 1);  // 1*i5
  EXPECT_EQ(oldAcc.indices[0].coeff(5), 0);  // 0*i6
  EXPECT_EQ(oldAcc.indices[1].coeff(3), 1);  // 1*i4
  EXPECT_EQ(oldAcc.indices[1].coeff(4), 0);  // 0*i5
  EXPECT_EQ(oldAcc.indices[1].coeff(5), 1);  // 1*i6
}

TEST(MotionEstimationKernel, ParamValidation) {
  dr::kernels::MotionEstimationParams bad;
  bad.H = 10;  // not a block multiple of n=8
  EXPECT_THROW(dr::kernels::motionEstimation(bad),
               dr::support::ContractViolation);
}

TEST(MotionEstimationKernel, SourceMatchesBuilder) {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 16;
  mp.W = 24;
  mp.n = 4;
  mp.m = 2;
  auto built = dr::kernels::motionEstimation(mp);
  auto compiled =
      dr::frontend::compileKernel(dr::kernels::motionEstimationSource(mp));
  EXPECT_EQ(compiled.params.at("H"), 16);
  expectSameReadTrace(built, compiled, "Old");
  expectSameReadTrace(built, compiled, "New");
}

TEST(MotionEstimationKernel, AccumulatorVariantCompiles) {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 16;
  mp.W = 16;
  mp.n = 4;
  mp.m = 2;
  mp.includeAccumulatorWrites = true;
  auto built = dr::kernels::motionEstimation(mp);
  auto compiled =
      dr::frontend::compileKernel(dr::kernels::motionEstimationSource(mp));
  EXPECT_EQ(built.signals.size(), 3u);
  EXPECT_EQ(compiled.signals.size(), 3u);
}

TEST(SusanKernel, MaskIs37Pixels) {
  const auto& half = dr::kernels::susanMaskHalfWidths();
  i64 total = 0;
  for (i64 hw : half) total += 2 * hw + 1;
  EXPECT_EQ(total, 37);  // the SUSAN circular mask
  EXPECT_EQ(half.size(), 7u);
}

TEST(SusanKernel, SeriesOfLoops) {
  auto p = dr::kernels::susan({});
  EXPECT_TRUE(dr::loopir::validate(p).empty());
  EXPECT_EQ(p.nests.size(), 7u);  // one nest per mask row
  for (const auto& nest : p.nests) {
    EXPECT_EQ(nest.depth(), 3);
    EXPECT_EQ(nest.body.size(), 1u);
  }
  // Total reads = 37 per reference-pixel position.
  AddressMap map(p);
  Trace t = readTrace(p, map, p.findSignal("image"));
  EXPECT_EQ(t.length(), 37LL * (144 - 6) * (176 - 6));
  // Every access stays inside the declared image (no halo).
  EXPECT_EQ(map.paddedRange(0)[0].extent(), 144);
  EXPECT_EQ(map.paddedRange(0)[1].extent(), 176);
  // The 4 extreme corner pixels of the top/bottom two rows are never
  // covered by the narrow mask rows: 8 missing in rows 0/H-1, 4 in rows
  // 1/H-2.
  EXPECT_EQ(t.distinctCount(), 144LL * 176 - 12);
}

TEST(SusanKernel, SourceMatchesBuilder) {
  dr::kernels::SusanParams sp;
  sp.H = 24;
  sp.W = 32;
  auto built = dr::kernels::susan(sp);
  auto compiled = dr::frontend::compileKernel(dr::kernels::susanSource(sp));
  expectSameReadTrace(built, compiled, "image");
}

TEST(Conv2dKernel, StructureAndTrace) {
  dr::kernels::Conv2dParams cp;
  cp.H = 16;
  cp.W = 16;
  cp.R = 2;
  auto p = dr::kernels::conv2d(cp);
  EXPECT_TRUE(dr::loopir::validate(p).empty());
  EXPECT_EQ(p.nests[0].depth(), 4);
  AddressMap map(p);
  Trace img = readTrace(p, map, p.findSignal("img"));
  i64 positions = (16 - 4) * (16 - 4);
  EXPECT_EQ(img.length(), positions * 25);
  Trace w = readTrace(p, map, p.findSignal("w"));
  EXPECT_EQ(w.length(), positions * 25);
  EXPECT_EQ(w.distinctCount(), 25);
}

TEST(Conv2dKernel, SourceMatchesBuilder) {
  dr::kernels::Conv2dParams cp;
  cp.H = 12;
  cp.W = 12;
  cp.R = 1;
  auto built = dr::kernels::conv2d(cp);
  auto compiled = dr::frontend::compileKernel(dr::kernels::conv2dSource(cp));
  expectSameReadTrace(built, compiled, "img");
  expectSameReadTrace(built, compiled, "w");
}

TEST(MatmulKernel, StructureAndTrace) {
  dr::kernels::MatmulParams mp;
  mp.N = 8;
  mp.K = 6;
  auto p = dr::kernels::matmul(mp);
  EXPECT_TRUE(dr::loopir::validate(p).empty());
  AddressMap map(p);
  Trace a = readTrace(p, map, p.findSignal("A"));
  EXPECT_EQ(a.length(), 8LL * 8 * 6);
  EXPECT_EQ(a.distinctCount(), 8 * 6);
  Trace b = readTrace(p, map, p.findSignal("B"));
  EXPECT_EQ(b.distinctCount(), 6 * 8);
}

TEST(MatmulKernel, SourceMatchesBuilder) {
  dr::kernels::MatmulParams mp;
  mp.N = 5;
  mp.K = 7;
  auto built = dr::kernels::matmul(mp);
  auto compiled = dr::frontend::compileKernel(dr::kernels::matmulSource(mp));
  expectSameReadTrace(built, compiled, "A");
  expectSameReadTrace(built, compiled, "B");
}

}  // namespace

// ---------------------------------------------------------------------------
// Wavelet lifting kernel (strided accesses).

#include "kernels/wavelet.h"
#include "loopir/normalize.h"
#include "analytic/pair_analysis.h"

namespace {

TEST(WaveletKernel, StructureAndTrace) {
  dr::kernels::WaveletParams wp;
  wp.H = 4;
  wp.W = 16;
  auto p = dr::kernels::waveletLifting(wp);
  EXPECT_TRUE(dr::loopir::validate(p).empty());
  AddressMap map(p);
  Trace t = readTrace(p, map, 0);
  EXPECT_EQ(t.length(), 3LL * 4 * 7);
  // Every sample except column W-1 is touched.
  EXPECT_EQ(t.distinctCount(), 4LL * 15);
}

TEST(WaveletKernel, SourceMatchesBuilder) {
  dr::kernels::WaveletParams wp;
  wp.H = 3;
  wp.W = 12;
  auto built = dr::kernels::waveletLifting(wp);
  auto compiled =
      dr::frontend::compileKernel(dr::kernels::waveletLiftingSource(wp));
  expectSameReadTrace(built, compiled, "x");
}

TEST(WaveletKernel, EvenSampleCarriesReuse) {
  // x[y][2i+2] is re-read as x[y][2(i+1)]: in the (y, i) pair the even
  // accesses have (b, c) = (0, 2) per dimension-1 -> b'=0, c'=1 reuse
  // along y? No — the reuse is between access *slots*, which the
  // per-access pair model sees as rank-2 within one access. The combined
  // trace still reuses: OPT at 2 slots already beats the flat baseline.
  auto p = dr::kernels::waveletLifting({4, 16});
  AddressMap map(p);
  Trace t = readTrace(p, map, 0);
  EXPECT_LT(t.distinctCount(), t.length());  // inter-access reuse exists
}

TEST(WaveletKernel, RejectsOddWidth) {
  EXPECT_THROW(dr::kernels::waveletLifting({4, 15}),
               dr::support::ContractViolation);
}

}  // namespace
