// Unit tests for the loop-nest IR: affine expressions, loops, programs,
// validation, normalization and printing.

#include <gtest/gtest.h>

#include "helpers.h"
#include "loopir/normalize.h"
#include "loopir/printer.h"
#include "loopir/program.h"
#include "loopir/validate.h"
#include "support/contracts.h"

namespace {

using namespace dr::loopir;
using dr::support::ContractViolation;
using dr::support::i64;

TEST(AffineExpr, CoefficientsAndConstant) {
  AffineExpr e(5);
  EXPECT_TRUE(e.isConstant());
  e.setCoeff(2, 3);
  EXPECT_EQ(e.coeff(2), 3);
  EXPECT_EQ(e.coeff(0), 0);
  EXPECT_EQ(e.coeff(99), 0);  // beyond storage reads as 0
  EXPECT_EQ(e.maxIterator(), 2);
  EXPECT_FALSE(e.isConstant());
  EXPECT_TRUE(e.dependsOn(2));
  EXPECT_FALSE(e.dependsOn(1));
}

TEST(AffineExpr, Evaluate) {
  AffineExpr e(1);
  e.setCoeff(0, 2);
  e.setCoeff(1, -3);
  EXPECT_EQ(e.evaluate({4, 5}), 2 * 4 - 3 * 5 + 1);
  EXPECT_THROW(e.evaluate({4}), ContractViolation);
}

TEST(AffineExpr, Arithmetic) {
  AffineExpr a = AffineExpr::iterator(0);
  AffineExpr b = AffineExpr::iterator(1).scaled(2) + AffineExpr::constant(7);
  AffineExpr sum = a + b;
  EXPECT_EQ(sum.coeff(0), 1);
  EXPECT_EQ(sum.coeff(1), 2);
  EXPECT_EQ(sum.constantTerm(), 7);
  AffineExpr diff = sum - b;
  EXPECT_EQ(diff, a);
}

TEST(AffineExpr, Substitution) {
  // j -> 3 + 2*j' in  y = 5*j + k:  y = 10*j' + k + 15.
  AffineExpr y;
  y.setCoeff(0, 5);
  y.setCoeff(1, 1);
  AffineExpr repl = AffineExpr::iterator(0).scaled(2) + AffineExpr::constant(3);
  AffineExpr out = y.substituted(0, repl);
  EXPECT_EQ(out.coeff(0), 10);
  EXPECT_EQ(out.coeff(1), 1);
  EXPECT_EQ(out.constantTerm(), 15);
}

TEST(AffineExpr, Render) {
  AffineExpr e(-2);
  e.setCoeff(0, 8);
  e.setCoeff(2, 1);
  EXPECT_EQ(e.str({"i", "j", "k"}), "8*i + k - 2");
  EXPECT_EQ(AffineExpr::constant(0).str({}), "0");
  AffineExpr neg;
  neg.setCoeff(1, -1);
  EXPECT_EQ(neg.str({"i", "j"}), "-j");
}

TEST(Loop, TripCountIncremental) {
  EXPECT_EQ((Loop{"i", 0, 9, 1}).tripCount(), 10);
  EXPECT_EQ((Loop{"i", -8, 7, 1}).tripCount(), 16);
  EXPECT_EQ((Loop{"i", 0, 9, 3}).tripCount(), 4);   // 0,3,6,9
  EXPECT_EQ((Loop{"i", 0, 10, 3}).tripCount(), 4);  // 0,3,6,9
  EXPECT_EQ((Loop{"i", 5, 4, 1}).tripCount(), 0);
}

TEST(Loop, TripCountDecremental) {
  EXPECT_EQ((Loop{"i", 9, 0, -1}).tripCount(), 10);
  EXPECT_EQ((Loop{"i", 9, 0, -4}).tripCount(), 3);  // 9,5,1
  EXPECT_EQ((Loop{"i", 0, 9, -1}).tripCount(), 0);
}

TEST(Loop, ValueAt) {
  Loop l{"i", 2, 10, 3};
  EXPECT_EQ(l.valueAt(0), 2);
  EXPECT_EQ(l.valueAt(2), 8);
  EXPECT_THROW(l.valueAt(3), ContractViolation);
  Loop d{"i", 9, 1, -4};
  EXPECT_EQ(d.valueAt(2), 1);
}

TEST(Program, CountsAndLookup) {
  dr::test::PairBox box{0, 4, 0, 3};
  Program p = dr::test::genericDoubleLoop(box, 1, 1);
  EXPECT_EQ(p.nests[0].iterationCount(), 20);
  EXPECT_EQ(p.totalAccessCount(), 20);
  EXPECT_EQ(p.findSignal("A"), 0);
  EXPECT_EQ(p.findSignal("nope"), -1);
  EXPECT_EQ(p.signalOf(p.nests[0].body[0]).name, "A");
}

TEST(Validate, AcceptsGoodProgram) {
  Program p = dr::test::genericDoubleLoop({0, 3, 0, 3}, 2, 1);
  EXPECT_TRUE(validate(p).empty());
}

TEST(Validate, RejectsBrokenPrograms) {
  Program p = dr::test::genericDoubleLoop({0, 3, 0, 3}, 2, 1);

  Program noSignals = p;
  noSignals.signals.clear();
  EXPECT_FALSE(validate(noSignals).empty());

  Program emptyLoop = p;
  emptyLoop.nests[0].loops[0].end = -10;
  EXPECT_FALSE(validate(emptyLoop).empty());

  Program zeroStep = p;
  zeroStep.nests[0].loops[1].step = 0;
  EXPECT_FALSE(validate(zeroStep).empty());

  Program dupIter = p;
  dupIter.nests[0].loops[1].name = "j";
  EXPECT_FALSE(validate(dupIter).empty());

  Program badSignal = p;
  badSignal.nests[0].body[0].signal = 7;
  EXPECT_FALSE(validate(badSignal).empty());

  Program dimMismatch = p;
  dimMismatch.nests[0].body[0].indices.push_back(AffineExpr(0));
  EXPECT_FALSE(validate(dimMismatch).empty());

  Program outOfNest = p;
  outOfNest.nests[0].body[0].indices[0].setCoeff(5, 1);
  EXPECT_FALSE(validate(outOfNest).empty());

  EXPECT_THROW(validateOrThrow(outOfNest), ContractViolation);
}

TEST(Normalize, StepGreaterThanOne) {
  Program p = dr::test::genericDoubleLoop({0, 9, 0, 5}, 1, 1);
  p.nests[0].loops[0].step = 3;  // j in {0,3,6,9}
  Program n = normalized(p);
  EXPECT_TRUE(isNormalized(n));
  EXPECT_EQ(n.nests[0].loops[0].tripCount(), 4);
  // Index expression now multiplies the normalized iterator by 3.
  EXPECT_EQ(n.nests[0].body[0].indices[0].coeff(0), 3);
  EXPECT_EQ(p.nests[0].iterationCount(), n.nests[0].iterationCount());
}

TEST(Normalize, DecrementalLoop) {
  Program p = dr::test::genericDoubleLoop({0, 4, 0, 4}, 1, 2);
  p.nests[0].loops[1] = Loop{"k", 4, 0, -1};
  Program n = normalized(p);
  EXPECT_TRUE(isNormalized(n));
  EXPECT_EQ(n.nests[0].loops[1].tripCount(), 5);
  // k = 4 - k': coefficient flips, constant absorbs 2*4.
  EXPECT_EQ(n.nests[0].body[0].indices[0].coeff(1), -2);
  EXPECT_EQ(n.nests[0].body[0].indices[0].constantTerm(), 8);
}

TEST(Normalize, Idempotent) {
  Program p = dr::test::genericDoubleLoop({0, 9, 0, 5}, 1, 1);
  p.nests[0].loops[0].step = 2;
  Program once = normalized(p);
  Program twice = normalized(once);
  EXPECT_EQ(once.nests[0].body[0].indices[0], twice.nests[0].body[0].indices[0]);
  EXPECT_EQ(once.nests[0].loops[0].tripCount(),
            twice.nests[0].loops[0].tripCount());
}

TEST(Printer, LoopHeaders) {
  EXPECT_EQ(loopToString(Loop{"i", 0, 9, 1}), "for (i = 0; i <= 9; i++)");
  EXPECT_EQ(loopToString(Loop{"i", 0, 9, 2}), "for (i = 0; i <= 9; i += 2)");
  EXPECT_EQ(loopToString(Loop{"i", 9, 0, -1}), "for (i = 9; i >= 0; i--)");
  EXPECT_EQ(loopToString(Loop{"i", 9, 0, -2}), "for (i = 9; i >= 0; i -= 2)");
}

TEST(Printer, NestAndProgram) {
  Program p = dr::test::genericDoubleLoop({0, 3, -2, 2}, 2, -1, 5);
  std::string nest = nestToString(p, p.nests[0]);
  EXPECT_NE(nest.find("for (j = 0; j <= 3; j++)"), std::string::npos);
  EXPECT_NE(nest.find("use(A[2*j - k + 5]);"), std::string::npos);
  std::string prog = programToString(p);
  EXPECT_NE(prog.find("kernel generic"), std::string::npos);
}

TEST(ArraySignal, ElementCount) {
  ArraySignal s;
  s.dims = {4, 5, 6};
  EXPECT_EQ(s.elementCount(), 120);
}

}  // namespace
