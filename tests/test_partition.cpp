// Tests for the per-object cache-partitioning advisor (src/partition/):
// the solver against the brute-force enumeration oracle on every
// small-capacity instance (exact paths must match the lexicographically
// smallest optimum bit-for-bit), determinism across thread counts,
// degenerate inputs, the curve CSV round trip, and the acceptance gates:
// a nonzero predicted miss reduction on the motion-estimation and conv2d
// zoo kernels, and an Advise served by a live daemon byte-identical to
// the cold CLI path.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "explorer/explorer.h"
#include "frontend/frontend.h"
#include "kernels/conv2d.h"
#include "kernels/motion_estimation.h"
#include "partition/advisor.h"
#include "partition/partition.h"
#include "report/report.h"
#include "service/client.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/rng.h"

namespace {

namespace proto = dr::service::proto;
using dr::partition::Allocation;
using dr::partition::Mode;
using dr::partition::ObjectCurve;
using dr::partition::PartitionResult;
using dr::partition::SolveOptions;
using dr::support::i64;
using dr::support::StatusCode;

std::string uniqueName(const char* stem) {
  static std::atomic<int> counter{0};
  return std::string(stem) + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::string socketPath() { return "/tmp/" + uniqueName("drpart") + ".sock"; }

ObjectCurve makeCurve(std::string name, i64 ctot, i64 distinct,
                      std::vector<ObjectCurve::Step> steps) {
  ObjectCurve c;
  c.name = std::move(name);
  c.Ctot = ctot;
  c.distinctElements = distinct;
  c.steps = std::move(steps);
  return c;
}

/// Allocation-level equality: the exact solver promises the
/// lexicographically smallest optimum, so it must match the oracle's
/// choice exactly, not just its total.
void expectSameResult(const PartitionResult& got,
                      const PartitionResult& want) {
  EXPECT_EQ(got.partitionedMisses, want.partitionedMisses);
  EXPECT_EQ(got.baselineMisses, want.baselineMisses);
  ASSERT_EQ(got.allocations.size(), want.allocations.size());
  for (std::size_t i = 0; i < got.allocations.size(); ++i) {
    EXPECT_EQ(got.allocations[i].ways, want.allocations[i].ways)
        << "object " << i;
    EXPECT_EQ(got.allocations[i].pinned, want.allocations[i].pinned)
        << "object " << i;
    EXPECT_EQ(got.allocations[i].misses, want.allocations[i].misses)
        << "object " << i;
  }
}

/// A random valid miss curve: non-increasing misses over ascending sizes.
ObjectCurve randomCurve(dr::support::Rng& rng, int index) {
  const i64 ctot = rng.uniform(0, 1000);
  ObjectCurve c;
  c.name = "obj" + std::to_string(index);
  c.Ctot = ctot;
  c.distinctElements = rng.uniform(0, 64);
  i64 size = 0;
  i64 misses = ctot;
  const int steps = static_cast<int>(rng.uniform(0, 5));
  for (int s = 0; s < steps; ++s) {
    size += rng.uniform(1, 40);
    misses = rng.uniform(0, misses);
    c.steps.push_back({size, misses});
  }
  return c;
}

// ---- curve mechanics ----------------------------------------------------

TEST(ObjectCurve, MissesAtStepsThroughTheCurve) {
  ObjectCurve c = makeCurve("x", 100, 50, {{10, 60}, {20, 30}, {40, 5}});
  EXPECT_TRUE(dr::partition::validateObjectCurve(c).isOk());
  EXPECT_EQ(c.missesAt(0), 100);   // below the first step: everything cold
  EXPECT_EQ(c.missesAt(9), 100);
  EXPECT_EQ(c.missesAt(10), 60);
  EXPECT_EQ(c.missesAt(25), 30);
  EXPECT_EQ(c.missesAt(1000), 5);
  EXPECT_EQ(c.minMisses(), 5);
}

TEST(ObjectCurve, ValidationRejectsBrokenCurves) {
  // Misses above Ctot.
  ObjectCurve high = makeCurve("x", 10, 0, {{1, 20}});
  EXPECT_FALSE(dr::partition::validateObjectCurve(high).isOk());
  // Non-ascending sizes.
  ObjectCurve order = makeCurve("x", 10, 0, {{5, 8}, {5, 7}});
  EXPECT_FALSE(dr::partition::validateObjectCurve(order).isOk());
  // Increasing misses (inclusion violation).
  ObjectCurve incr = makeCurve("x", 10, 0, {{1, 3}, {2, 7}});
  EXPECT_FALSE(dr::partition::validateObjectCurve(incr).isOk());
}

// ---- exact solver vs the enumeration oracle -----------------------------

TEST(WayPartition, MatchesEnumerationHandBuilt) {
  // Two objects with sharply different marginal gains: the equal split
  // wastes half the cache on the flat object.
  std::vector<ObjectCurve> objects = {
      makeCurve("hot", 1000, 64, {{32, 500}, {64, 100}, {96, 10}}),
      makeCurve("flat", 500, 64, {{32, 450}}),
  };
  SolveOptions opts;
  opts.mode = Mode::WayPartition;
  opts.capacity = 128;
  opts.ways = 4;  // way size 32
  ASSERT_TRUE(dr::partition::validateSolveInputs(objects, opts).isOk());
  PartitionResult solved = dr::partition::solvePartition(objects, opts);
  PartitionResult oracle = dr::partition::enumeratePartition(objects, opts);
  EXPECT_TRUE(solved.exact);
  EXPECT_FALSE(solved.usedFallback);
  expectSameResult(solved, oracle);
  EXPECT_TRUE(
      dr::partition::validateResult(objects, opts, solved).isOk());
  // The hot object deserves 3 of the 4 ways (96 elems -> 10 misses).
  EXPECT_EQ(solved.allocations[0].ways, 3);
  EXPECT_GT(solved.reductionPercent, 0.0);
}

TEST(WayPartition, MatchesEnumerationRandomized) {
  dr::support::Rng rng(0xC0FFEEULL);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform(1, 4));
    std::vector<ObjectCurve> objects;
    for (int i = 0; i < n; ++i) objects.push_back(randomCurve(rng, i));
    SolveOptions opts;
    opts.mode = Mode::WayPartition;
    opts.ways = rng.uniform(1, 8);
    opts.capacity = opts.ways * rng.uniform(0, 50);
    ASSERT_TRUE(dr::partition::validateSolveInputs(objects, opts).isOk());
    PartitionResult solved = dr::partition::solvePartition(objects, opts);
    PartitionResult oracle =
        dr::partition::enumeratePartition(objects, opts);
    ASSERT_TRUE(solved.exact) << "round " << round;
    expectSameResult(solved, oracle);
    ASSERT_TRUE(
        dr::partition::validateResult(objects, opts, solved).isOk())
        << "round " << round;
  }
}

TEST(Scratchpad, MatchesEnumerationRandomized) {
  dr::support::Rng rng(0xBEEFULL);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform(1, 6));
    std::vector<ObjectCurve> objects;
    for (int i = 0; i < n; ++i) objects.push_back(randomCurve(rng, i));
    SolveOptions opts;
    opts.mode = Mode::Scratchpad;
    opts.capacity = rng.uniform(0, 200);
    ASSERT_TRUE(dr::partition::validateSolveInputs(objects, opts).isOk());
    PartitionResult solved = dr::partition::solvePartition(objects, opts);
    PartitionResult oracle =
        dr::partition::enumeratePartition(objects, opts);
    ASSERT_TRUE(solved.exact) << "round " << round;
    expectSameResult(solved, oracle);
    ASSERT_TRUE(
        dr::partition::validateResult(objects, opts, solved).isOk())
        << "round " << round;
  }
}

// ---- greedy fallbacks ---------------------------------------------------

TEST(WayPartition, GreedyFallbackNeverWorseThanBaseline) {
  dr::support::Rng rng(0xFA11ULL);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform(1, 5));
    std::vector<ObjectCurve> objects;
    for (int i = 0; i < n; ++i) objects.push_back(randomCurve(rng, i));
    SolveOptions opts;
    opts.mode = Mode::WayPartition;
    opts.ways = rng.uniform(1, 10);
    opts.capacity = opts.ways * rng.uniform(0, 50);
    opts.exhaustiveCellLimit = 0;  // force the greedy path
    PartitionResult greedy = dr::partition::solvePartition(objects, opts);
    EXPECT_TRUE(greedy.usedFallback);
    EXPECT_FALSE(greedy.exact);
    EXPECT_LE(greedy.partitionedMisses, greedy.baselineMisses);
    ASSERT_TRUE(
        dr::partition::validateResult(objects, opts, greedy).isOk())
        << "round " << round;
    // The greedy answer can be suboptimal but never beats the oracle.
    PartitionResult oracle =
        dr::partition::enumeratePartition(objects, opts);
    EXPECT_GE(greedy.partitionedMisses, oracle.partitionedMisses);
  }
}

TEST(Scratchpad, GreedyFallbackNeverWorseThanBaseline) {
  dr::support::Rng rng(0x5CADULL);
  for (int round = 0; round < 200; ++round) {
    const int n = static_cast<int>(rng.uniform(1, 6));
    std::vector<ObjectCurve> objects;
    for (int i = 0; i < n; ++i) objects.push_back(randomCurve(rng, i));
    SolveOptions opts;
    opts.mode = Mode::Scratchpad;
    opts.capacity = rng.uniform(0, 200);
    opts.exhaustiveObjectLimit = 0;  // force the greedy path
    PartitionResult greedy = dr::partition::solvePartition(objects, opts);
    EXPECT_TRUE(greedy.usedFallback);
    EXPECT_LE(greedy.partitionedMisses, greedy.baselineMisses);
    ASSERT_TRUE(
        dr::partition::validateResult(objects, opts, greedy).isOk())
        << "round " << round;
    PartitionResult oracle =
        dr::partition::enumeratePartition(objects, opts);
    EXPECT_GE(greedy.partitionedMisses, oracle.partitionedMisses);
  }
}

// ---- degenerate inputs --------------------------------------------------

TEST(Partition, DegenerateInstances) {
  SolveOptions way;
  way.mode = Mode::WayPartition;
  way.capacity = 64;
  way.ways = 4;

  // One object: gets everything useful; matches the oracle.
  std::vector<ObjectCurve> one = {
      makeCurve("solo", 100, 32, {{16, 40}, {32, 0}})};
  expectSameResult(dr::partition::solvePartition(one, way),
                   dr::partition::enumeratePartition(one, way));

  // Zero capacity: every object stays cold, reduction is zero.
  SolveOptions zero = way;
  zero.capacity = 0;
  PartitionResult z = dr::partition::solvePartition(one, zero);
  EXPECT_EQ(z.partitionedMisses, 100);
  EXPECT_EQ(z.baselineMisses, 100);
  EXPECT_EQ(z.reductionPercent, 0.0);
  EXPECT_TRUE(dr::partition::validateResult(one, zero, z).isOk());

  // All-cold curves (no steps): nothing to win, nothing breaks.
  std::vector<ObjectCurve> cold = {makeCurve("a", 50, 8, {}),
                                   makeCurve("b", 70, 8, {})};
  PartitionResult c = dr::partition::solvePartition(cold, way);
  EXPECT_EQ(c.partitionedMisses, 120);
  EXPECT_EQ(c.reductionPercent, 0.0);
  EXPECT_TRUE(dr::partition::validateResult(cold, way, c).isOk());

  // Capacity smaller than the way count: way size 0, everything cold.
  SolveOptions tiny = way;
  tiny.capacity = 3;
  tiny.ways = 4;
  PartitionResult t = dr::partition::solvePartition(one, tiny);
  EXPECT_EQ(t.waySizeElems, 0);
  EXPECT_EQ(t.partitionedMisses, 100);
  EXPECT_TRUE(dr::partition::validateResult(one, tiny, t).isOk());

  // Scratchpad with zero capacity: nothing pins.
  SolveOptions spz;
  spz.mode = Mode::Scratchpad;
  spz.capacity = 0;
  PartitionResult s = dr::partition::solvePartition(one, spz);
  EXPECT_FALSE(s.allocations[0].pinned);
  EXPECT_EQ(s.partitionedMisses, 100);
  EXPECT_TRUE(dr::partition::validateResult(one, spz, s).isOk());

  // Empty object set.
  std::vector<ObjectCurve> none;
  PartitionResult e = dr::partition::solvePartition(none, way);
  EXPECT_EQ(e.partitionedMisses, 0);
  EXPECT_EQ(e.baselineMisses, 0);
  EXPECT_TRUE(dr::partition::validateResult(none, way, e).isOk());
}

TEST(Partition, InvalidOptionsAreRejected) {
  std::vector<ObjectCurve> objects = {makeCurve("x", 10, 4, {})};
  SolveOptions negCap;
  negCap.capacity = -1;
  EXPECT_FALSE(
      dr::partition::validateSolveInputs(objects, negCap).isOk());
  SolveOptions zeroWays;
  zeroWays.capacity = 64;
  zeroWays.ways = 0;
  EXPECT_FALSE(
      dr::partition::validateSolveInputs(objects, zeroWays).isOk());
}

// ---- the advisor over real kernels --------------------------------------

TEST(Advisor, NonzeroReductionOnMotionEstimation) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  dr::partition::AdvisorOptions opts;
  opts.solve.mode = Mode::WayPartition;
  opts.solve.capacity = 256;
  opts.solve.ways = 8;
  auto report = dr::partition::adviseKernelChecked(p, opts);
  ASSERT_TRUE(report.hasValue()) << report.status().str();
  ASSERT_EQ(report->objects.size(), 2u);  // New and Old
  EXPECT_TRUE(report->result.exact);
  EXPECT_GT(report->result.reductionPercent, 0.0);
  EXPECT_LT(report->result.partitionedMisses,
            report->result.baselineMisses);
}

TEST(Advisor, NonzeroReductionOnConv2d) {
  auto p = dr::kernels::conv2d({});
  dr::partition::AdvisorOptions opts;
  opts.solve.mode = Mode::WayPartition;
  opts.solve.capacity = 128;
  opts.solve.ways = 8;
  auto report = dr::partition::adviseKernelChecked(p, opts);
  ASSERT_TRUE(report.hasValue()) << report.status().str();
  EXPECT_GT(report->result.reductionPercent, 0.0);

  // And the scratchpad placement pins the tiny coefficient array.
  opts.solve.mode = Mode::Scratchpad;
  opts.solve.capacity = 1024;
  auto sp = dr::partition::adviseKernelChecked(p, opts);
  ASSERT_TRUE(sp.hasValue()) << sp.status().str();
  EXPECT_GT(sp->result.reductionPercent, 0.0);
  bool wPinned = false;
  for (const auto& a : sp->result.allocations)
    if (sp->objects[static_cast<std::size_t>(a.object)].name == "w")
      wPinned = a.pinned;
  EXPECT_TRUE(wPinned);
}

TEST(Advisor, RejectsKernelWithoutReads) {
  dr::loopir::Program p;
  p.name = "empty";
  dr::partition::AdvisorOptions opts;
  opts.solve.capacity = 64;
  auto report = dr::partition::adviseKernelChecked(p, opts);
  ASSERT_FALSE(report.hasValue());
  EXPECT_EQ(report.status().code(), StatusCode::InvalidInput);
}

TEST(Advisor, DeterministicAcrossThreadCounts) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  dr::partition::AdvisorOptions opts;
  opts.solve.capacity = 256;
  opts.solve.ways = 8;

  ::setenv("DR_THREADS", "1", 1);
  auto one = dr::partition::adviseKernelChecked(p, opts);
  ::setenv("DR_THREADS", "4", 1);
  auto four = dr::partition::adviseKernelChecked(p, opts);
  ::unsetenv("DR_THREADS");
  ASSERT_TRUE(one.hasValue()) << one.status().str();
  ASSERT_TRUE(four.hasValue()) << four.status().str();
  EXPECT_EQ(dr::report::advisorCsv(*one), dr::report::advisorCsv(*four));
}

TEST(Advisor, CurveCsvRoundTripMatchesExploration) {
  auto p = dr::kernels::conv2d({});
  const std::vector<int> signals = dr::partition::readSignals(p);
  ASSERT_FALSE(signals.empty());
  for (int s : signals) {
    auto ex = dr::explorer::exploreSignalChecked(p, s, {});
    ASSERT_TRUE(ex.hasValue()) << ex.status().str();
    ObjectCurve direct = dr::partition::objectCurveFromExploration(*ex);
    auto viaCsv = dr::partition::objectCurveFromCsv(
        ex->signalName, ex->Ctot, ex->distinctElements, ex->curveFidelity,
        dr::report::curveCsv(ex->signalName, ex->simulatedCurve));
    ASSERT_TRUE(viaCsv.hasValue()) << viaCsv.status().str();
    EXPECT_EQ(direct.Ctot, viaCsv->Ctot);
    ASSERT_EQ(direct.steps.size(), viaCsv->steps.size());
    for (std::size_t i = 0; i < direct.steps.size(); ++i) {
      EXPECT_EQ(direct.steps[i].size, viaCsv->steps[i].size);
      EXPECT_EQ(direct.steps[i].misses, viaCsv->steps[i].misses);
    }
  }
}

TEST(Advisor, CsvRejectsGarbage) {
  auto bad = dr::partition::objectCurveFromCsv(
      "x", 10, 4, dr::simcore::Fidelity::ExactStream, "not,a,curve\n1,2\n");
  EXPECT_FALSE(bad.hasValue());
}

// ---- the Advise verb end to end -----------------------------------------

TEST(AdviseService, ByteIdenticalToColdCli) {
  const std::string sock = socketPath();
  dr::service::ServerOptions sopts;
  sopts.endpoint = sock;
  sopts.workers = 2;
  dr::service::Server server(sopts);
  ASSERT_TRUE(server.start().isOk());

  const std::string kernelText =
      dr::kernels::motionEstimationSource({32, 32, 4, 4});

  proto::AdviseRequest req;
  req.kernel = kernelText;
  req.mode = static_cast<std::uint8_t>(Mode::WayPartition);
  req.capacity = 256;
  req.ways = 8;

  dr::service::ClientOptions copts;
  copts.endpoint = sock;
  dr::service::Client client(copts);
  auto reply = client.advise(req);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  ASSERT_EQ(reply->code, StatusCode::Ok) << reply->message;
  auto result = proto::decodeAdviseResult(reply->body);
  ASSERT_TRUE(result.hasValue()) << result.status().str();
  EXPECT_FALSE(result->usedFallback);

  // The cold CLI path: compile the same text, advise directly.
  auto compiled = dr::frontend::compileKernelChecked(kernelText);
  ASSERT_TRUE(compiled.hasValue()) << compiled.status().str();
  dr::partition::AdvisorOptions opts;
  opts.solve.mode = Mode::WayPartition;
  opts.solve.capacity = 256;
  opts.solve.ways = 8;
  auto direct = dr::partition::adviseKernelChecked(*compiled, opts);
  ASSERT_TRUE(direct.hasValue()) << direct.status().str();
  EXPECT_EQ(result->csv, dr::report::advisorCsv(*direct));
  EXPECT_EQ(result->baselineMisses, direct->result.baselineMisses);
  EXPECT_EQ(result->partitionedMisses, direct->result.partitionedMisses);

  // A repeat advise hits the report cache and stays byte-identical.
  auto again = client.advise(req);
  ASSERT_TRUE(again.hasValue()) << again.status().str();
  ASSERT_EQ(again->code, StatusCode::Ok) << again->message;
  auto cachedResult = proto::decodeAdviseResult(again->body);
  ASSERT_TRUE(cachedResult.hasValue());
  EXPECT_TRUE(cachedResult->cached);
  EXPECT_EQ(cachedResult->csv, result->csv);

  // The metrics snapshot saw both advises and the cache hit.
  auto snapshot = server.metricsSnapshot();
  EXPECT_EQ(snapshot.adviseRequests, 2);
  EXPECT_EQ(snapshot.adviseCacheHits, 1);
  EXPECT_EQ(snapshot.adviseErrors, 0);
  EXPECT_GE(snapshot.adviseSolveLatency.count, 1);

  server.requestShutdown();
  server.wait();
  ::unlink(sock.c_str());
}

TEST(AdviseService, RejectsUnknownMode) {
  proto::AdviseRequest req;
  req.kernel = "k";
  req.mode = 7;
  const std::string payload = proto::encodeAdviseRequest(req);
  auto decoded = proto::decodeAdviseRequest(payload);
  ASSERT_FALSE(decoded.hasValue());
  EXPECT_EQ(decoded.status().code(), StatusCode::InvalidInput);
}

TEST(AdviseProtocol, RequestAndResultRoundTrip) {
  proto::AdviseRequest req;
  req.kernel = "some kernel text";
  req.deadlineMs = 1500;
  req.remainingBudgetMs = 900;
  req.flags = proto::kFlagNoCache;
  req.mode = static_cast<std::uint8_t>(Mode::Scratchpad);
  req.capacity = 4096;
  req.ways = 16;
  auto reqBack = proto::decodeAdviseRequest(proto::encodeAdviseRequest(req));
  ASSERT_TRUE(reqBack.hasValue()) << reqBack.status().str();
  EXPECT_EQ(reqBack->kernel, req.kernel);
  EXPECT_EQ(reqBack->deadlineMs, req.deadlineMs);
  EXPECT_EQ(reqBack->remainingBudgetMs, req.remainingBudgetMs);
  EXPECT_EQ(reqBack->flags, req.flags);
  EXPECT_EQ(reqBack->mode, req.mode);
  EXPECT_EQ(reqBack->capacity, req.capacity);
  EXPECT_EQ(reqBack->ways, req.ways);

  proto::AdviseResult res;
  res.cached = true;
  res.fidelity = 2;
  res.usedFallback = true;
  res.baselineMisses = 123456;
  res.partitionedMisses = 98765;
  res.csv = "object,misses\nTOTAL,98765\n";
  auto resBack = proto::decodeAdviseResult(proto::encodeAdviseResult(res));
  ASSERT_TRUE(resBack.hasValue()) << resBack.status().str();
  EXPECT_EQ(resBack->cached, res.cached);
  EXPECT_EQ(resBack->fidelity, res.fidelity);
  EXPECT_EQ(resBack->usedFallback, res.usedFallback);
  EXPECT_EQ(resBack->baselineMisses, res.baselineMisses);
  EXPECT_EQ(resBack->partitionedMisses, res.partitionedMisses);
  EXPECT_EQ(resBack->csv, res.csv);
}

}  // namespace
