// Unit tests for the power model and the hierarchy machinery: chain
// bookkeeping (eq. (1)), chain power (eq. (3)) and weighted cost
// (eq. (2)), useless-level pruning, enumeration, Pareto filtering, global
// layer assignment and collapsing onto a predefined hierarchy.

#include <gtest/gtest.h>

#include "hierarchy/assign.h"
#include "hierarchy/chain.h"
#include "hierarchy/collapse.h"
#include "hierarchy/cost.h"
#include "hierarchy/enumerate.h"
#include "hierarchy/pareto.h"
#include "power/memory_model.h"
#include "support/contracts.h"

namespace {

using namespace dr::hierarchy;
using dr::power::MemoryLibrary;
using dr::power::MemoryModel;
using dr::power::MemoryModelParams;
using dr::support::i64;
using dr::support::Rational;

TEST(PowerModel, MonotoneInCapacity) {
  MemoryModel m{MemoryModelParams{}};
  double prev = 0.0;
  for (i64 words : {1, 8, 64, 512, 4096, 32768}) {
    double e = m.readEnergy(words, 8);
    EXPECT_GT(e, prev);
    prev = e;
    EXPECT_GT(m.writeEnergy(words, 8), m.readEnergy(words, 8));
    EXPECT_GT(m.area(words, 8), 0.0);
  }
}

TEST(PowerModel, WiderWordsCostMore) {
  MemoryModel m{MemoryModelParams{}};
  EXPECT_GT(m.readEnergy(100, 32), m.readEnergy(100, 8));
  EXPECT_GT(m.area(100, 32), m.area(100, 8));
}

TEST(PowerModel, OnChipStaysBelowBackgroundInPaperRegime) {
  // The regime the paper's copy-candidates live in: up to a few thousand
  // words must cost well under one background access.
  MemoryLibrary lib = MemoryLibrary::standard();
  for (i64 words : {1, 56, 128, 2745, 4096})
    EXPECT_LT(lib.onChip.readEnergy(words, 8),
              0.5 * lib.background.readEnergy);
}

TEST(PowerModel, RejectsBadInputs) {
  MemoryModel m{MemoryModelParams{}};
  EXPECT_THROW(m.readEnergy(0, 8), dr::support::ContractViolation);
  EXPECT_THROW(m.area(4, 0), dr::support::ContractViolation);
  MemoryModelParams bad;
  bad.exponent = 0.0;
  EXPECT_THROW(MemoryModel{bad}, dr::support::ContractViolation);
}

CopyChain twoLevel() {
  CopyChain c;
  c.Ctot = 1000;
  c.levels.push_back(ChainLevel{500, 100, 0, "L1"});
  c.levels.push_back(ChainLevel{50, 250, 1000, "L2"});
  return c;
}

TEST(Chain, ReadConservationAndFR) {
  CopyChain c = twoLevel();
  EXPECT_TRUE(c.validate().empty());
  EXPECT_EQ(c.readsFromLevel(0), 100);        // feeds level 1
  EXPECT_EQ(c.readsFromLevel(1), 250);        // feeds level 2
  EXPECT_EQ(c.readsFromLevel(2), 1000);       // datapath
  EXPECT_EQ(c.levels[0].reuseFactor(c.Ctot), Rational(10));
  EXPECT_EQ(c.levels[1].reuseFactor(c.Ctot), Rational(4));
  EXPECT_EQ(c.onChipSize(), 550);
}

TEST(Chain, ValidationCatchesProblems) {
  CopyChain c = twoLevel();
  c.levels[1].size = 600;  // not decreasing
  EXPECT_FALSE(c.validate().empty());

  c = twoLevel();
  c.levels[1].directReads = 900;  // conservation broken
  EXPECT_FALSE(c.validate().empty());

  c = twoLevel();
  c.levels[0].writes = 0;
  EXPECT_FALSE(c.validate().empty());
}

TEST(Chain, FlatBaseline) {
  CopyChain f = CopyChain::flat(123);
  EXPECT_TRUE(f.validate().empty());
  EXPECT_EQ(f.readsFromLevel(0), 123);
  EXPECT_EQ(f.onChipSize(), 0);
}

TEST(Cost, Eq3ExpansionMatchesManualSum) {
  // Chain power (eq. 3) must equal C_1(P0r+P1w) + C_2(P1r+P2w) + Ctot*P2r.
  MemoryLibrary lib = MemoryLibrary::standard();
  CopyChain c = twoLevel();
  double manual =
      100 * (lib.background.readEnergy + lib.onChip.writeEnergy(500, 8)) +
      250 * (lib.onChip.readEnergy(500, 8) + lib.onChip.writeEnergy(50, 8)) +
      1000 * lib.onChip.readEnergy(50, 8);
  EXPECT_NEAR(chainEnergyPerFrame(c, lib, 8), manual, 1e-12);
}

TEST(Cost, BypassChainEnergyAccounting) {
  // Bypass reads are served by level 1 directly (Fig. 9b).
  MemoryLibrary lib = MemoryLibrary::standard();
  CopyChain c = twoLevel();
  c.levels[1].directReads = 800;
  c.levels[0].directReads = 200;
  double manual =
      100 * (lib.background.readEnergy + lib.onChip.writeEnergy(500, 8)) +
      250 * (lib.onChip.readEnergy(500, 8) + lib.onChip.writeEnergy(50, 8)) +
      200 * lib.onChip.readEnergy(500, 8) +  // bypassed datapath reads
      800 * lib.onChip.readEnergy(50, 8);
  EXPECT_NEAR(chainEnergyPerFrame(c, lib, 8), manual, 1e-12);
}

TEST(Cost, NormalizationAgainstFlat) {
  MemoryLibrary lib = MemoryLibrary::standard();
  ChainCost cost = evaluateChain(twoLevel(), lib, 8);
  EXPECT_GT(cost.normalizedPower, 0.0);
  EXPECT_LT(cost.normalizedPower, 1.0);  // hierarchy must win here
  ChainCost flat = evaluateChain(CopyChain::flat(1000), lib, 8);
  EXPECT_DOUBLE_EQ(flat.normalizedPower, 1.0);
}

TEST(Cost, WeightedCombination) {
  MemoryLibrary lib = MemoryLibrary::standard();
  CostWeights w;
  w.alpha = 2.0;
  w.beta = 0.5;
  w.frameRate = 10.0;
  ChainCost cost = evaluateChain(twoLevel(), lib, 8, w);
  EXPECT_NEAR(cost.weighted, 2.0 * cost.power + 0.5 * 550, 1e-9);
  EXPECT_NEAR(cost.power, cost.energyPerFrame * 10.0, 1e-12);
}

TEST(Cost, UselessLevelPredicate) {
  ChainLevel same{100, 1000, 0, ""};
  EXPECT_TRUE(isUselessLevel(same, 1000));  // F_R == 1
  ChainLevel good{100, 10, 0, ""};
  EXPECT_FALSE(isUselessLevel(good, 1000));
}

TEST(Enumerate, BuildChainBypassPlacement) {
  std::vector<CandidatePoint> pts = {
      {500, 100, 1000, 0, "outer"},
      {50, 250, 800, 200, "inner bypass"},
  };
  CopyChain c = buildChain(1000, pts);
  EXPECT_TRUE(c.validate().empty());
  EXPECT_EQ(c.levels[0].directReads, 200);  // bypass lands one level up
  EXPECT_EQ(c.levels[1].directReads, 800);

  // Bypass point alone: the background serves the bypassed reads.
  CopyChain solo = buildChain(1000, {{50, 250, 800, 200, "solo"}});
  EXPECT_EQ(solo.backgroundDirectReads, 200);

  // Bypass point not innermost is rejected.
  std::vector<CandidatePoint> bad = {
      {500, 100, 800, 200, "outer bypass"},
      {50, 250, 1000, 0, "inner"},
  };
  EXPECT_THROW(buildChain(1000, bad), dr::support::ContractViolation);
}

TEST(Enumerate, DirectBackgroundReads) {
  CopyChain c = buildChain(1000, {{50, 100, 600, 0, "x"}}, 400);
  EXPECT_TRUE(c.validate().empty());
  EXPECT_EQ(c.backgroundDirectReads, 400);
  EXPECT_EQ(c.readsFromLevel(0), 500);
}

TEST(Enumerate, GeneratesPrunedCombinations) {
  MemoryLibrary lib = MemoryLibrary::standard();
  std::vector<CandidatePoint> pts = {
      {400, 50, 1000, 0, "a"},
      {100, 200, 1000, 0, "b"},
      {10, 500, 1000, 0, "c"},
      {90, 210, 1000, 0, "d"},  // barely better than b: pruned after b
  };
  EnumerateOptions opts;
  opts.maxLevels = 3;
  opts.minWriteImprovement = 1.10;
  auto designs = enumerateChains(1000, pts, lib, 8, opts);
  bool flat = false;
  for (const ChainDesign& d : designs) {
    if (d.label == "flat") flat = true;
    EXPECT_TRUE(d.chain.validate().empty());
    EXPECT_EQ(d.label.find("b + d"), std::string::npos);
  }
  EXPECT_TRUE(flat);
  EXPECT_GT(designs.size(), 4u);
}

TEST(Enumerate, RejectsBadCandidates) {
  MemoryLibrary lib = MemoryLibrary::standard();
  std::vector<CandidatePoint> bad = {{10, 5, 900, 0, "x"}};  // 900 != 1000
  EXPECT_THROW(enumerateChains(1000, bad, lib, 8),
               dr::support::ContractViolation);
}

TEST(Pareto, FilterBasics) {
  std::vector<std::pair<double, double>> pts = {
      {1, 10}, {2, 8}, {3, 9}, {4, 4}, {5, 4}, {1, 12},
  };
  auto keep = paretoFilter(pts);
  ASSERT_EQ(keep.size(), 3u);
  EXPECT_EQ(keep[0], 0u);
  EXPECT_EQ(keep[1], 1u);
  EXPECT_EQ(keep[2], 3u);
}

TEST(Pareto, EmptyAndSingle) {
  EXPECT_TRUE(paretoFilter({}).empty());
  EXPECT_EQ(paretoFilter({{1, 1}}).size(), 1u);
}

TEST(Pareto, ChainsStrictlyImprove) {
  MemoryLibrary lib = MemoryLibrary::standard();
  std::vector<CandidatePoint> pts = {
      {400, 50, 1000, 0, "a"}, {100, 200, 1000, 0, "b"},
  };
  auto designs = enumerateChains(1000, pts, lib, 8);
  auto front = paretoChains(designs);
  ASSERT_FALSE(front.empty());
  for (std::size_t i = 1; i < front.size(); ++i) {
    EXPECT_LT(front[i - 1].cost.onChipSize, front[i].cost.onChipSize);
    EXPECT_GT(front[i - 1].cost.power, front[i].cost.power);
  }
}

TEST(Assign, PicksCheapestWithinBudget) {
  // Two signals, each with a flat and a hierarchy option.
  std::vector<std::vector<SignalOption>> options = {
      {{10.0, 0, 0}, {2.0, 100, 1}},
      {{8.0, 0, 0}, {1.0, 80, 1}},
  };
  AssignmentResult r = assignLayers(options, 200);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.choice, (std::vector<int>{1, 1}));
  EXPECT_DOUBLE_EQ(r.totalPower, 3.0);

  // Budget fits only one hierarchy: pick the bigger saving (signal 2).
  r = assignLayers(options, 100);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.choice, (std::vector<int>{1, 0}));
  EXPECT_DOUBLE_EQ(r.totalPower, 10.0);

  // No budget: all flat.
  r = assignLayers(options, 0);
  EXPECT_EQ(r.choice, (std::vector<int>{0, 0}));
}

TEST(Assign, SweepIsMonotone) {
  std::vector<std::vector<SignalOption>> options = {
      {{10.0, 0, 0}, {4.0, 50, 1}, {2.0, 120, 2}},
      {{8.0, 0, 0}, {3.0, 60, 1}},
  };
  auto sweep = assignmentSweep(options, {0, 60, 120, 200});
  double prev = 1e18;
  for (const AssignmentResult& r : sweep) {
    ASSERT_TRUE(r.feasible);
    EXPECT_LE(r.totalPower, prev);
    prev = r.totalPower;
  }
}

TEST(Assign, RequiresOptions) {
  EXPECT_THROW(assignLayers({{}}, 10), dr::support::ContractViolation);
}

TEST(Collapse, MapsAndMerges) {
  PhysicalHierarchy phys;
  phys.layerSizes = {1024, 64};
  EXPECT_EQ(phys.smallestFitting(2000), -1);
  EXPECT_EQ(phys.smallestFitting(500), 0);
  EXPECT_EQ(phys.smallestFitting(64), 1);

  CopyChain c;
  c.Ctot = 1000;
  c.levels.push_back(ChainLevel{500, 100, 0, "v1"});
  c.levels.push_back(ChainLevel{200, 150, 0, "v2"});  // same layer as v1
  c.levels.push_back(ChainLevel{40, 300, 1000, "v3"});
  ASSERT_TRUE(c.validate().empty());

  CopyChain mapped = collapseOnto(c, phys);
  EXPECT_TRUE(mapped.validate().empty());
  ASSERT_EQ(mapped.depth(), 2);
  EXPECT_EQ(mapped.levels[0].size, 1024);
  EXPECT_EQ(mapped.levels[0].writes, 100);  // v1's writes kept; v2 merged
  EXPECT_EQ(mapped.levels[1].size, 64);
  EXPECT_EQ(mapped.levels[1].directReads, 1000);
}

TEST(Collapse, OversizedLevelFallsToBackground) {
  PhysicalHierarchy phys;
  phys.layerSizes = {256};
  CopyChain c;
  c.Ctot = 500;
  c.levels.push_back(ChainLevel{2000, 50, 0, "big"});
  c.levels.push_back(ChainLevel{100, 80, 500, "small"});
  ASSERT_TRUE(c.validate().empty());
  CopyChain mapped = collapseOnto(c, phys);
  ASSERT_EQ(mapped.depth(), 1);
  EXPECT_EQ(mapped.levels[0].size, 256);
  EXPECT_EQ(mapped.levels[0].directReads, 500);
}

TEST(Collapse, PhysicalLayersMustDecrease) {
  PhysicalHierarchy phys;
  phys.layerSizes = {64, 1024};
  EXPECT_THROW(phys.smallestFitting(10), dr::support::ContractViolation);
}

}  // namespace

// ---------------------------------------------------------------------------
// SCBD (storage cycle budget distribution, DTSE step 4).

#include "scbd/scbd.h"

namespace {

using namespace dr::scbd;

CopyChain scbdChain() {
  CopyChain c;
  c.Ctot = 1000;
  c.levels.push_back(ChainLevel{500, 100, 0, "L1"});
  c.levels.push_back(ChainLevel{50, 250, 1000, "L2"});
  return c;
}

TEST(Scbd, ChainLoadsAccounting) {
  auto loads = chainLoads(scbdChain());
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_EQ(loads[0].level, 0);
  EXPECT_EQ(loads[0].reads, 100);   // background feeds L1
  EXPECT_EQ(loads[0].writes, 0);
  EXPECT_EQ(loads[1].reads, 250);   // L1 feeds L2
  EXPECT_EQ(loads[1].writes, 100);
  EXPECT_EQ(loads[2].reads, 1000);  // L2 serves the datapath
  EXPECT_EQ(loads[2].writes, 250);
  EXPECT_EQ(loads[2].accesses(), 1250);
}

TEST(Scbd, PortsAndCyclesAreInverse) {
  LevelLoad load;
  load.reads = 900;
  load.writes = 100;
  EXPECT_EQ(load.requiredPorts(500), 2);
  EXPECT_EQ(load.requiredCycles(2), 500);
  EXPECT_EQ(load.requiredPorts(1000), 1);
  EXPECT_EQ(load.requiredPorts(999), 2);   // 1000 accesses need 2 ports
  EXPECT_EQ(load.requiredCycles(3), 334);
  EXPECT_THROW(load.requiredPorts(0), dr::support::ContractViolation);
}

TEST(Scbd, MinimalBudgetIsMaxOverLevels) {
  CopyChain c = scbdChain();
  // Single-ported everywhere: the datapath level dominates (1250).
  EXPECT_EQ(minimalCycleBudget(c, {1, 1, 1}), 1250);
  // Dual-porting the hot level halves its need: background 100, L1 350,
  // L2 625.
  EXPECT_EQ(minimalCycleBudget(c, {1, 1, 2}), 625);
  EXPECT_TRUE(feasible(c, {1, 1, 2}, 700));
  EXPECT_FALSE(feasible(c, {1, 1, 2}, 600));
  EXPECT_THROW(minimalCycleBudget(c, {1, 1}),
               dr::support::ContractViolation);
}

TEST(Scbd, TimingOptionsTradeSizeForKernelCycles) {
  CopyChain c = scbdChain();
  auto options = timingOptions(c, 2);
  ASSERT_EQ(options.size(), 2u);
  EXPECT_FALSE(options[0].doubleBuffered);
  EXPECT_EQ(options[0].copySize, 50);
  EXPECT_EQ(options[0].kernelCycles, 1250);
  EXPECT_TRUE(options[1].doubleBuffered);
  EXPECT_EQ(options[1].copySize, 100);       // doubled
  EXPECT_EQ(options[1].kernelCycles, 1000);  // fills moved off the path
  EXPECT_EQ(options[1].prefetchCycles, 250);
  EXPECT_THROW(timingOptions(c, 3), dr::support::ContractViolation);
}

}  // namespace
