// Additional cross-cutting property sweeps: shift invariances of the
// analytical model, monotonicity of the partial-reuse family, brute-force
// cross-checks for footprint shapes and the assignment DP, conservation
// under collapsing, and simplifier idempotence.

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <tuple>

#include "adopt/simplify.h"
#include "analytic/footprint.h"
#include "analytic/pair_analysis.h"
#include "analytic/partial.h"
#include "helpers.h"
#include "hierarchy/assign.h"
#include "hierarchy/collapse.h"
#include "simcore/buffer_sim.h"
#include "simcore/lru_stack.h"
#include "support/rng.h"
#include "trace/walker.h"

namespace {

using namespace dr::analytic;
using dr::support::i64;
using dr::support::Rng;
using dr::test::PairBox;

// ---------------------------------------------------------------------------
// Shift invariance: the model depends on ranges and coefficients only,
// never on where the iteration box or the array offset sits.

class ShiftInvariance
    : public ::testing::TestWithParam<std::tuple<i64, i64, i64, i64>> {};

TEST_P(ShiftInvariance, BoundsAndOffsetsDoNotMatter) {
  auto [b, c, jShift, kShift] = GetParam();
  PairBox base{0, 9, 0, 6};
  PairBox moved{jShift, 9 + jShift, kShift, 6 + kShift};

  auto p0 = dr::test::genericDoubleLoop(base, b, c, 0);
  auto p1 = dr::test::genericDoubleLoop(moved, b, c, 17);
  MaxReuse m0 = analyzePair(p0.nests[0], p0.nests[0].body[0], 0);
  MaxReuse m1 = analyzePair(p1.nests[0], p1.nests[0].body[0], 0);

  EXPECT_EQ(m0.hasReuse, m1.hasReuse);
  EXPECT_EQ(m0.FRmax, m1.FRmax);
  EXPECT_EQ(m0.AMax, m1.AMax);
  EXPECT_EQ(m0.missesPerOuter, m1.missesPerOuter);

  // And the traces agree with both.
  dr::trace::AddressMap map1(p1);
  auto t1 = dr::trace::readTrace(p1, map1, 0);
  EXPECT_EQ(t1.distinctCount(), m1.missesPerOuter);
}

INSTANTIATE_TEST_SUITE_P(
    Shifts, ShiftInvariance,
    ::testing::Values(std::make_tuple(1, 1, 5, -3),
                      std::make_tuple(2, 3, -7, 11),
                      std::make_tuple(0, 1, 100, 100),
                      std::make_tuple(3, -2, -4, 9)));

// ---------------------------------------------------------------------------
// Partial-reuse family monotonicity (Section 6.2): more gamma, more reuse.

class PartialMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PartialMonotonicity, GammaOrdersEverything) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    i64 b = rng.uniform(0, 3);
    i64 c = rng.uniform(1, 3);
    PairBox box{0, rng.uniform(6, 14), 0, rng.uniform(6, 14)};
    auto p = dr::test::genericDoubleLoop(box, b, c);
    MaxReuse m = analyzePair(p.nests[0], p.nests[0].body[0], 0);
    GammaRange range = gammaRange(m);
    if (range.empty()) continue;

    dr::support::Rational prevFR(0);
    i64 prevA = 0;
    for (i64 g = range.lo; g <= range.hi; ++g) {
      PartialPoint pt = partialPoint(m, g, false);
      PartialPoint bp = partialPoint(m, g, true);
      EXPECT_GT(pt.FR, prevFR) << "b=" << b << " c=" << c << " g=" << g;
      EXPECT_GT(pt.A, prevA);
      EXPECT_GE(bp.FR, pt.FR);          // bypass never hurts the copy F_R
      EXPECT_EQ(bp.A + 1, pt.A);        // eq. (22) = eq. (18) - 1
      EXPECT_EQ(bp.CRPerOuter, pt.CRPerOuter);
      EXPECT_LT(bp.missesPerOuter, pt.missesPerOuter);
      // Partial never beats maximum reuse.
      EXPECT_GE(pt.missesPerOuter, m.missesPerOuter);
      prevFR = pt.FR;
      prevA = pt.A;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartialMonotonicity,
                         ::testing::Values(11, 22, 33, 44));

// ---------------------------------------------------------------------------
// Footprint shapes vs brute force: dimShape must count exactly the
// distinct values of sum c_d * x_d over the box.

class ShapeBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShapeBruteForce, CountsAndOverlapsExact) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 15; ++trial) {
    int loops = static_cast<int>(rng.uniform(1, 3));
    dr::loopir::LoopNest nest;
    dr::loopir::AffineExpr e(rng.uniform(-5, 5));
    for (int d = 0; d < loops; ++d) {
      nest.loops.push_back(
          dr::loopir::Loop{"i" + std::to_string(d), 0, rng.uniform(1, 5), 1});
      e.setCoeff(d, rng.uniform(-4, 4));
    }

    DimShape shape = dimShape(e, nest, 0);

    // Brute force the value set.
    std::set<i64> values;
    std::vector<i64> iters(static_cast<std::size_t>(loops));
    std::function<void(int)> walk = [&](int d) {
      if (d == loops) {
        values.insert(e.evaluate(iters));
        return;
      }
      for (i64 v = nest.loops[static_cast<std::size_t>(d)].begin;
           v <= nest.loops[static_cast<std::size_t>(d)].end; ++v) {
        iters[static_cast<std::size_t>(d)] = v;
        walk(d + 1);
      }
    };
    walk(0);

    ASSERT_EQ(shape.count, static_cast<i64>(values.size()));
    ASSERT_EQ(shape.span, *values.rbegin() - *values.begin() + 1);
    // Overlap with a shift = brute-force intersection size.
    for (i64 delta : {1, 2, 3}) {
      std::set<i64> shifted;
      for (i64 v : values) shifted.insert(v + delta);
      std::size_t inter = 0;
      for (i64 v : values)
        if (shifted.count(v)) ++inter;
      ASSERT_EQ(shape.overlapWithShift(delta), static_cast<i64>(inter))
          << "delta " << delta;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShapeBruteForce,
                         ::testing::Values(5, 6, 7, 8, 9));

// ---------------------------------------------------------------------------
// Assignment DP vs exhaustive search on random small instances.

class AssignBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AssignBruteForce, DpMatchesExhaustive) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    int signals = static_cast<int>(rng.uniform(1, 3));
    std::vector<std::vector<dr::hierarchy::SignalOption>> options(
        static_cast<std::size_t>(signals));
    for (auto& list : options) {
      int n = static_cast<int>(rng.uniform(1, 4));
      for (int i = 0; i < n; ++i)
        list.push_back({static_cast<double>(rng.uniform(1, 100)),
                        rng.uniform(0, 40), i});
    }
    i64 budget = rng.uniform(0, 80);

    auto dp = dr::hierarchy::assignLayers(options, budget);

    // Exhaustive.
    double bestPower = -1;
    std::function<void(std::size_t, i64, double)> walk =
        [&](std::size_t s, i64 size, double power) {
          if (size > budget) return;
          if (s == options.size()) {
            if (bestPower < 0 || power < bestPower) bestPower = power;
            return;
          }
          for (const auto& o : options[s])
            walk(s + 1, size + o.size, power + o.power);
        };
    walk(0, 0, 0.0);

    ASSERT_EQ(dp.feasible, bestPower >= 0);
    if (dp.feasible) {
      ASSERT_DOUBLE_EQ(dp.totalPower, bestPower);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AssignBruteForce,
                         ::testing::Values(3, 13, 23, 31));

// ---------------------------------------------------------------------------
// Collapse conservation on random chains.

class CollapseConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CollapseConservation, DatapathReadsPreserved) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    dr::hierarchy::CopyChain chain;
    chain.Ctot = rng.uniform(100, 10000);
    int levels = static_cast<int>(rng.uniform(1, 3));
    i64 size = rng.uniform(500, 4000);
    i64 writes = rng.uniform(1, chain.Ctot / 4 + 1);
    i64 remainingReads = chain.Ctot;
    for (int l = 0; l < levels; ++l) {
      dr::hierarchy::ChainLevel level;
      level.size = size;
      level.writes = writes;
      bool last = l + 1 == levels;
      level.directReads = last ? remainingReads
                               : rng.uniform(0, remainingReads / 2);
      remainingReads -= level.directReads;
      level.label = "v" + std::to_string(l);
      chain.levels.push_back(level);
      size = std::max<i64>(1, size / (rng.uniform(2, 4)));
      writes = writes + rng.uniform(1, 50);
      if (size <= 1) break;
    }
    chain.levels.back().directReads += remainingReads;
    if (!chain.validate().empty()) continue;  // rare degenerate draw

    dr::hierarchy::PhysicalHierarchy phys;
    phys.layerSizes = {2048, 256, 16};
    auto mapped = dr::hierarchy::collapseOnto(chain, phys);
    ASSERT_TRUE(mapped.validate().empty());
    // Datapath reads conserved.
    i64 direct = mapped.backgroundDirectReads;
    for (const auto& level : mapped.levels) direct += level.directReads;
    ASSERT_EQ(direct, chain.Ctot);
    // Never more physical levels than virtual ones.
    ASSERT_LE(mapped.depth(), chain.depth());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollapseConservation,
                         ::testing::Values(7, 17, 27));

// ---------------------------------------------------------------------------
// Simplifier idempotence: a second pass changes nothing.

TEST(SimplifyExtra, Idempotent) {
  Rng rng(99);
  dr::loopir::LoopNest nest;
  nest.loops = {dr::loopir::Loop{"j", 0, 9, 1},
                dr::loopir::Loop{"k", 0, 7, 1}};
  std::function<dr::adopt::AddrExprPtr(int)> gen =
      [&](int budget) -> dr::adopt::AddrExprPtr {
    using dr::adopt::AddrExpr;
    if (budget <= 1) {
      switch (rng.uniform(0, 2)) {
        case 0: return AddrExpr::constant(rng.uniform(-9, 9));
        case 1: return AddrExpr::iter(0);
        default: return AddrExpr::iter(1);
      }
    }
    switch (rng.uniform(0, 3)) {
      case 0: return AddrExpr::add({gen(budget / 2), gen(budget / 2)});
      case 1:
        return AddrExpr::mul(
            {AddrExpr::constant(rng.uniform(-4, 4)), gen(budget - 1)});
      case 2: return AddrExpr::floorDiv(gen(budget - 1), rng.uniform(1, 6));
      default: return AddrExpr::mod(gen(budget - 1), rng.uniform(1, 8));
    }
  };
  for (int i = 0; i < 40; ++i) {
    auto e = gen(8);
    auto once = dr::adopt::simplify(e, nest);
    auto twice = dr::adopt::simplify(once, nest);
    EXPECT_TRUE(once->equals(*twice));
  }
}

// ---------------------------------------------------------------------------
// LRU inclusion (misses non-increasing in capacity) on kernel traces.

TEST(LruInclusion, MonotoneOnKernelTraces) {
  auto p = dr::test::genericDoubleLoop({0, 19, 0, 7}, 1, 1);
  dr::trace::AddressMap map(p);
  auto t = dr::trace::readTrace(p, map, 0);
  dr::simcore::LruStackDistances lru(t);
  i64 prev = lru.missesAt(0);
  for (i64 cap = 1; cap <= 40; ++cap) {
    i64 cur = lru.missesAt(cap);
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

}  // namespace
