// Tests for the report module: ASCII plotting and the markdown
// exploration report.

#include <gtest/gtest.h>

#include "explorer/explorer.h"
#include "kernels/motion_estimation.h"
#include "report/ascii_plot.h"
#include "report/report.h"
#include "support/contracts.h"
#include "support/strings.h"

namespace {

using namespace dr::report;

TEST(AsciiPlot, RendersPointsWithinBounds) {
  Series s;
  s.mark = '*';
  s.name = "line";
  for (int i = 1; i <= 10; ++i) s.points.emplace_back(i, i * i);
  PlotOptions opts;
  opts.width = 40;
  opts.height = 10;
  std::string plot = asciiPlot({s}, opts);
  ASSERT_FALSE(plot.empty());
  EXPECT_NE(plot.find('*'), std::string::npos);
  EXPECT_NE(plot.find("* line"), std::string::npos);
  // Every line stays within the frame width.
  for (const std::string& line : dr::support::split(plot, '\n'))
    EXPECT_LE(line.size(), 40u + 24u);
}

TEST(AsciiPlot, LogAxesDropNonPositive) {
  Series s;
  s.points = {{0.0, 5.0}, {-3.0, 2.0}};
  PlotOptions opts;
  opts.logX = true;
  EXPECT_EQ(asciiPlot({s}, opts), "");  // nothing plottable
  s.points.emplace_back(10.0, 5.0);
  EXPECT_NE(asciiPlot({s}, opts), "");
}

TEST(AsciiPlot, OverlappingSeriesMarked) {
  Series a;
  a.mark = '.';
  a.points = {{1, 1}, {2, 2}};
  Series b;
  b.mark = 'o';
  b.points = {{1, 1}};  // overlaps a's first point
  std::string plot = asciiPlot({a, b});
  EXPECT_NE(plot.find('#'), std::string::npos);  // collision marker
}

TEST(AsciiPlot, ValidatesOptions) {
  PlotOptions bad;
  bad.width = 2;
  EXPECT_THROW(asciiPlot({}, bad), dr::support::ContractViolation);
}

TEST(AsciiPlot, SinglePointDegenerateRanges) {
  Series s;
  s.points = {{5, 5}};
  std::string plot = asciiPlot({s});
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(SignalReport, ContainsAllSections) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  std::string md = signalReport(p, ex);
  EXPECT_NE(md.find("# Data reuse exploration: signal `Old`"),
            std::string::npos);
  EXPECT_NE(md.find("## Analytic copy-candidate points"), std::string::npos);
  EXPECT_NE(md.find("## Closed-form multi-level footprints"),
            std::string::npos);
  EXPECT_NE(md.find("## Reuse factor vs copy size"), std::string::npos);
  EXPECT_NE(md.find("## Pareto-optimal hierarchies"), std::string::npos);
  EXPECT_NE(md.find("Belady-optimal simulation"), std::string::npos);
}

TEST(SignalReport, PlotsOptional) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  ReportOptions opts;
  opts.includePlots = false;
  std::string md = signalReport(p, ex, opts);
  EXPECT_EQ(md.find("```"), std::string::npos);
}

TEST(SignalReport, MixedFidelityCurveLabelsRungAndFailedPoints) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  ASSERT_GE(ex.simulatedCurve.points.size(), 3u);
  // Degrade by hand: the run fell to the approximate rung and two points'
  // isolated tasks exhausted their retries.
  ex.curveFidelity = dr::simcore::Fidelity::ApproxFold;
  for (auto& pt : ex.simulatedCurve.points)
    pt.fidelity = dr::simcore::Fidelity::ApproxFold;
  for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    ex.simulatedCurve.points[i].fidelity = dr::simcore::Fidelity::Failed;
    ex.simulatedCurve.points[i].writes = 0;
    ex.simulatedCurve.points[i].reads = 0;
  }
  std::string md = signalReport(p, ex);
  EXPECT_NE(md.find(std::string("curve fidelity: ") +
                    dr::simcore::fidelityName(
                        dr::simcore::Fidelity::ApproxFold)),
            std::string::npos);
  EXPECT_NE(md.find("failed curve points (task retries exhausted): 2"),
            std::string::npos);
  // The plot still renders and labels the rung it shows.
  EXPECT_NE(md.find("Belady-optimal simulation ["), std::string::npos);
}

TEST(SignalReport, ExactCurveReportsNoFailedPoints) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  std::string md = signalReport(p, ex);
  EXPECT_EQ(md.find("failed curve points"), std::string::npos);
}

TEST(CurveCsv, RendersEveryPointIncludingFailedOnes) {
  dr::simcore::ReuseCurve curve;
  curve.points.push_back(
      {4, 10, 100, 10.0, dr::simcore::Fidelity::ExactStream});
  // A Failed point carries no counts (writes/reads zero) but still
  // occupies its row — dropping it silently would misalign resumed runs.
  curve.points.push_back({8, 0, 0, 1.0, dr::simcore::Fidelity::Failed});
  curve.points.push_back({16, 5, 100, 20.0, dr::simcore::Fidelity::ExactFold});
  std::string csv = curveCsv("Old", curve);
  EXPECT_NE(csv.find("size,writes,reads,reuse_factor"), std::string::npos);
  std::size_t rows = 0;
  for (const std::string& line : dr::support::split(csv, '\n'))
    if (!line.empty() && line[0] != '#' &&
        line.find("size") == std::string::npos)
      ++rows;
  EXPECT_EQ(rows, 3u);
  // Deterministic: the canonical rendering is byte-stable.
  EXPECT_EQ(csv, curveCsv("Old", curve));
}

TEST(MetricsReport, RendersCountersCacheLedgerAndLatency) {
  dr::service::MetricsSnapshot s;
  s.requests = 5;
  s.exploreRequests = 3;
  s.cacheHits = 2;
  s.cacheMisses = 1;
  s.cacheEntries = 1;
  s.exploreLatency.count = 3;
  s.exploreLatency.p50Us = 15;
  s.exploreLatency.p95Us = 1023;
  s.exploreLatency.maxUs = 900;
  s.exploreLatency.totalUs = 930;
  std::string md = metricsReport(s);
  EXPECT_NE(md.find("| requests | 5 |"), std::string::npos);
  EXPECT_NE(md.find("| explore requests | 3 |"), std::string::npos);
  EXPECT_NE(md.find("## Result cache"), std::string::npos);
  EXPECT_NE(md.find("hit rate: 0.667 over 3 lookups"), std::string::npos);
  EXPECT_NE(md.find("## Explore latency"), std::string::npos);
  EXPECT_NE(md.find("| mean (us) | 310 |"), std::string::npos);
}

TEST(MetricsReport, OmitsLatencySectionWithNoSamples) {
  dr::service::MetricsSnapshot s;
  s.requests = 1;
  std::string md = metricsReport(s);
  EXPECT_EQ(md.find("## Explore latency"), std::string::npos);
  EXPECT_EQ(md.find("hit rate"), std::string::npos);
}

TEST(SignalReport, LongTablesSubsampled) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  auto ex = dr::explorer::exploreSignal(p, p.findSignal("Old"));
  ReportOptions opts;
  opts.maxTableRows = 4;
  std::string md = signalReport(p, ex, opts);
  // Count analytic-table rows: must be bounded.
  std::size_t rows = 0;
  for (const std::string& line : dr::support::split(md, '\n'))
    if (line.rfind("| L", 0) == 0 || line.rfind("| combined", 0) == 0)
      ++rows;
  EXPECT_LE(rows, 16u);  // 4-ish rows per table across sections
}

}  // namespace
