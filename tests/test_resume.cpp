// Crash-safe resumable exploration (explorer::exploreSignalChecked with
// a ResumeContext): the core property is byte-identity — a sweep killed
// at *every possible commit point* and resumed must produce exactly the
// curve an uninterrupted run produces, with committed points reused,
// missing points recomputed, and nothing double-counted.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "explorer/explorer.h"
#include "kernels/motion_estimation.h"
#include "support/budget.h"
#include "support/journal.h"

namespace {

using namespace dr::explorer;
using dr::support::i64;
using dr::support::RunBudget;
using dr::support::StatusCode;

dr::loopir::Program meKernel() {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 16;
  mp.W = 16;
  mp.n = 4;
  mp.m = 2;
  return dr::kernels::motionEstimation(mp);
}

std::string tempJournal(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

std::string readAll(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Exact textual fingerprint of everything the journal must preserve:
/// the full curve (counts, bit-printed reuse factors, fidelity tags) and
/// the stream totals.
std::string describe(const SignalExploration& ex) {
  std::ostringstream ss;
  ss << ex.Ctot << '/' << ex.distinctElements << '/'
     << static_cast<int>(ex.curveFidelity) << '\n';
  ss.precision(17);
  for (const auto& pt : ex.simulatedCurve.points)
    ss << pt.size << ',' << pt.writes << ',' << pt.reads << ','
       << pt.reuseFactor << ',' << static_cast<int>(pt.fidelity) << '\n';
  const auto& st = ex.simulationStats;
  ss << st.folded << ',' << st.exact << ',' << st.completed << ','
     << static_cast<int>(st.fidelity) << ',' << st.totalEvents << ','
     << st.simulatedEvents << ',' << st.period << ',' << st.repeatCount
     << ',' << st.warmupEvents << ',' << st.distinct << ','
     << st.foldPeriodChunks << '\n';
  return ss.str();
}

TEST(Resume, FreshJournaledRunMatchesPlainRun) {
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ExploreOptions opts;

  auto plain = exploreSignalChecked(p, signal, opts);
  ASSERT_TRUE(plain.hasValue()) << plain.status().str();

  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_fresh.drj");
  ResumeSummary summary;
  auto journaled = exploreSignalChecked(p, signal, opts, ctx, &summary);
  ASSERT_TRUE(journaled.hasValue()) << journaled.status().str();

  EXPECT_EQ(describe(*journaled), describe(*plain));
  EXPECT_FALSE(summary.journalLoaded);
  EXPECT_FALSE(summary.restarted);
  EXPECT_EQ(summary.pointsReused, 0);
  EXPECT_EQ(summary.pointsRecomputed,
            static_cast<i64>(plain->simulatedCurve.points.size()));
  EXPECT_EQ(summary.pointsFailed, 0);
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, CompleteJournalReconstructsWithZeroRecomputation) {
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ExploreOptions opts;
  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_complete.drj");

  auto first = exploreSignalChecked(p, signal, opts, ctx, nullptr);
  ASSERT_TRUE(first.hasValue()) << first.status().str();

  ResumeSummary summary;
  auto second = exploreSignalChecked(p, signal, opts, ctx, &summary);
  ASSERT_TRUE(second.hasValue()) << second.status().str();
  EXPECT_EQ(describe(*second), describe(*first));
  EXPECT_TRUE(summary.journalLoaded);
  EXPECT_EQ(summary.pointsRecomputed, 0);
  EXPECT_EQ(summary.pointsReused,
            static_cast<i64>(first->simulatedCurve.points.size()));
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, KilledAtEveryCommitPointResumesByteIdentical) {
  // The tentpole property. Run once journaled, then replay a crash at
  // every commit boundary the file ever had: truncate the journal to that
  // prefix and resume. Every resumed result must be byte-identical to the
  // uninterrupted one.
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ExploreOptions opts;
  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_kill.drj");

  auto clean = exploreSignalChecked(p, signal, opts);
  ASSERT_TRUE(clean.hasValue()) << clean.status().str();
  const std::string expected = describe(*clean);
  const i64 totalPoints =
      static_cast<i64>(clean->simulatedCurve.points.size());

  auto full = exploreSignalChecked(p, signal, opts, ctx, nullptr);
  ASSERT_TRUE(full.hasValue()) << full.status().str();
  ASSERT_EQ(describe(*full), expected);
  const std::string bytes = readAll(ctx.journalPath);
  ASSERT_FALSE(bytes.empty());

  // Every commit boundary = every committedBytes value any file prefix
  // parses to (plus a torn mid-record prefix after each, which the loader
  // must truncate to the same boundary).
  std::set<i64> commitOffsets;
  for (std::size_t len = 1; len <= bytes.size(); ++len) {
    auto parsed = dr::support::parseJournal(bytes.substr(0, len));
    if (parsed.hasValue()) commitOffsets.insert(parsed->committedBytes);
  }
  ASSERT_GE(commitOffsets.size(), 3u);  // header, meta, and point commits

  for (i64 offset : commitOffsets) {
    SCOPED_TRACE("killed at commit offset " + std::to_string(offset));
    // A crash tears mid-record more often than at a record edge: keep a
    // few trailing garbage bytes past the commit when there is room.
    const std::size_t keep =
        std::min(bytes.size(), static_cast<std::size_t>(offset) + 3);
    {
      std::ofstream f(ctx.journalPath, std::ios::binary | std::ios::trunc);
      f << bytes.substr(0, keep);
    }
    ResumeSummary summary;
    auto resumed = exploreSignalChecked(p, signal, opts, ctx, &summary);
    ASSERT_TRUE(resumed.hasValue()) << resumed.status().str();
    EXPECT_EQ(describe(*resumed), expected);
    EXPECT_TRUE(summary.journalLoaded);
    EXPECT_FALSE(summary.restarted);
    EXPECT_EQ(summary.pointsReused + summary.pointsRecomputed, totalPoints);
    EXPECT_EQ(summary.pointsFailed, 0);
    // And the resumed journal is now complete: one more resume reuses
    // everything.
    ResumeSummary again;
    auto verify = exploreSignalChecked(p, signal, opts, ctx, &again);
    ASSERT_TRUE(verify.hasValue());
    EXPECT_EQ(again.pointsRecomputed, 0);
    EXPECT_EQ(again.pointsReused, totalPoints);
  }
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, ConfigMismatchRestartsCleanWithReason) {
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_mismatch.drj");

  ExploreOptions optsA;
  auto first = exploreSignalChecked(p, signal, optsA, ctx, nullptr);
  ASSERT_TRUE(first.hasValue());

  // Same journal path, different size grid: the journal answers a
  // different question and must be discarded, not partially reused.
  ExploreOptions optsB;
  optsB.denseGridUpTo = 16;
  auto plainB = exploreSignalChecked(p, signal, optsB);
  ASSERT_TRUE(plainB.hasValue());
  ResumeSummary summary;
  auto second = exploreSignalChecked(p, signal, optsB, ctx, &summary);
  ASSERT_TRUE(second.hasValue()) << second.status().str();
  EXPECT_TRUE(summary.restarted);
  EXPECT_FALSE(summary.journalLoaded);
  EXPECT_FALSE(summary.restartReason.empty());
  EXPECT_EQ(summary.pointsReused, 0);
  EXPECT_EQ(describe(*second), describe(*plainB));

  // The restarted journal is coherent: resuming under optsB reuses all.
  ResumeSummary again;
  auto third = exploreSignalChecked(p, signal, optsB, ctx, &again);
  ASSERT_TRUE(third.hasValue());
  EXPECT_TRUE(again.journalLoaded);
  EXPECT_EQ(again.pointsRecomputed, 0);
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, CorruptJournalRestartsCleanWithReason) {
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_corrupt.drj");
  {
    std::ofstream f(ctx.journalPath, std::ios::binary);
    f << "this is not a journal";
  }
  ResumeSummary summary;
  auto run = exploreSignalChecked(p, signal, ExploreOptions{}, ctx, &summary);
  ASSERT_TRUE(run.hasValue()) << run.status().str();
  EXPECT_TRUE(summary.restarted);
  EXPECT_FALSE(summary.restartReason.empty());
  auto plain = exploreSignalChecked(p, signal, ExploreOptions{});
  ASSERT_TRUE(plain.hasValue());
  EXPECT_EQ(describe(*run), describe(*plain));
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, BudgetTrippedRunJournalsNothingAndResumesExact) {
  // Degraded rungs are never journaled: a deadline/event trip falls to
  // the analytic curve, and the later (unbudgeted) resume redoes the
  // sweep at full fidelity — the CI kill/resume smoke in miniature.
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ExploreOptions opts;
  RunBudget budget;
  budget.setDeadline(std::chrono::milliseconds(0));  // already expired
  opts.budget = &budget;
  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_budget.drj");

  ResumeSummary tripped;
  auto degraded = exploreSignalChecked(p, signal, opts, ctx, &tripped);
  ASSERT_TRUE(degraded.hasValue()) << degraded.status().str();
  ASSERT_EQ(degraded->curveFidelity, dr::simcore::Fidelity::Analytic);
  EXPECT_EQ(tripped.pointsReused, 0);

  auto journal = dr::support::loadJournal(ctx.journalPath);
  ASSERT_TRUE(journal.hasValue()) << journal.status().str();
  EXPECT_TRUE(journal->points.empty());
  EXPECT_FALSE(journal->hasMeta);

  ExploreOptions unbudgeted;
  auto clean = exploreSignalChecked(p, signal, unbudgeted);
  ASSERT_TRUE(clean.hasValue());
  ResumeSummary summary;
  auto resumed = exploreSignalChecked(p, signal, unbudgeted, ctx, &summary);
  ASSERT_TRUE(resumed.hasValue()) << resumed.status().str();
  EXPECT_EQ(describe(*resumed), describe(*clean));
  EXPECT_EQ(summary.pointsRecomputed,
            static_cast<i64>(clean->simulatedCurve.points.size()));
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, ResumeFalseAlwaysStartsFresh) {
  const auto p = meKernel();
  const int signal = p.findSignal("Old");
  ResumeContext ctx;
  ctx.journalPath = tempJournal("dr_resume_false.drj");
  auto first = exploreSignalChecked(p, signal, ExploreOptions{}, ctx, nullptr);
  ASSERT_TRUE(first.hasValue());

  ctx.resume = false;
  ResumeSummary summary;
  auto second =
      exploreSignalChecked(p, signal, ExploreOptions{}, ctx, &summary);
  ASSERT_TRUE(second.hasValue());
  EXPECT_FALSE(summary.journalLoaded);
  EXPECT_FALSE(summary.restarted);
  EXPECT_EQ(summary.pointsReused, 0);
  std::remove(ctx.journalPath.c_str());
}

TEST(Resume, BadRequestsAreStatusesNotCrashes) {
  const auto p = meKernel();
  ResumeContext ctx;  // empty journalPath
  auto noPath = exploreSignalChecked(p, p.findSignal("Old"),
                                     ExploreOptions{}, ctx, nullptr);
  ASSERT_FALSE(noPath.hasValue());
  EXPECT_EQ(noPath.status().code(), StatusCode::InvalidInput);

  ctx.journalPath = tempJournal("dr_resume_bad.drj");
  ctx.commitEveryPoints = 0;
  auto badCommit = exploreSignalChecked(p, p.findSignal("Old"),
                                        ExploreOptions{}, ctx, nullptr);
  ASSERT_FALSE(badCommit.hasValue());
  EXPECT_EQ(badCommit.status().code(), StatusCode::InvalidInput);

  ctx.commitEveryPoints = 1;
  auto badSignal =
      exploreSignalChecked(p, 99, ExploreOptions{}, ctx, nullptr);
  ASSERT_FALSE(badSignal.hasValue());
  EXPECT_EQ(badSignal.status().code(), StatusCode::InvalidInput);
}

}  // namespace
