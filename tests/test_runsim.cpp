// Run-granularity fast path (trace/stream.h nextRuns +
// simcore/stream_stack.h pushRun): the decoded run stream must expand to
// exactly the element stream regardless of chunk size, and the batched
// accumulators must be byte-identical to element-wise pushes — distances,
// histograms, and (for OPT) slot-tree state — on structured and
// adversarial inputs alike.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernels/motion_estimation.h"
#include "simcore/stream_stack.h"
#include "support/budget.h"
#include "support/rng.h"
#include "trace/stream.h"
#include "trace/walker.h"

#include "helpers.h"

namespace {

using dr::support::i64;
using dr::support::Rng;
using dr::trace::AccessRun;
using dr::trace::AddressMap;
using dr::trace::RunBlock;
using dr::trace::Trace;
using dr::trace::TraceCursor;
using dr::trace::TraceFilter;
using dr::loopir::Program;

TraceFilter readsOf(int signal) {
  TraceFilter f;
  f.signal = signal;
  return f;
}

struct DecodeCase {
  Program program;
  TraceFilter filter;
  std::string label;
};

/// Shapes the decoder must handle: plain bursts, stride 0 (repeat runs),
/// negative stride, length-1 sweeps (innermost trip 1), multi-access
/// nests (singleton fallback), multi-nest streams, and motion estimation.
std::vector<DecodeCase> decodeCases() {
  std::vector<DecodeCase> cases;
  auto add = [&](Program p, std::string label) {
    cases.push_back(DecodeCase{std::move(p), readsOf(0), std::move(label)});
  };

  add(dr::test::genericDoubleLoop({0, 19, 0, 3}, 1, 1, 0), "j+k");
  add(dr::test::genericDoubleLoop({0, 12, 0, 7}, 1, 2, 0), "j+2k");
  add(dr::test::genericDoubleLoop({0, 30, 0, 2}, 3, -1, 3), "neg-stride");
  add(dr::test::genericDoubleLoop({0, 9, 0, 6}, 1, 0, 0), "stride0-inner");
  add(dr::test::genericDoubleLoop({0, 1, 0, 9}, 1, 1, 0), "outer-trip2");
  add(dr::test::genericDoubleLoop({0, 9, 0, 0}, 1, 1, 0), "len1-sweeps");
  add(dr::test::tripleLoopWithIntermediate({0, 11, 0, 3}, 4, 1, 1, false),
      "triple");

  {
    // Two accesses in one body: interleaved order, singleton-run fallback.
    auto p = dr::test::genericDoubleLoop({0, 9, 0, 6}, 1, 1, 0);
    dr::loopir::ArrayAccess second = p.nests[0].body[0];
    second.indices[0].setCoeff(0, 2);
    p.nests[0].body.push_back(second);
    p.signals[0].dims = {64};
    add(std::move(p), "multi-access");
  }

  {
    // Two nests back to back: runs never span a nest boundary.
    auto p = dr::test::genericDoubleLoop({0, 7, 0, 5}, 1, 1, 0);
    auto q = dr::test::genericDoubleLoop({0, 5, 0, 7}, 2, 1, 0);
    p.nests.push_back(q.nests.front());
    p.signals[0].dims = {40};
    add(std::move(p), "two-nests");
  }

  {
    dr::kernels::MotionEstimationParams mp;
    mp.H = 32;
    mp.W = 32;
    mp.n = 8;
    mp.m = 2;
    TraceFilter f;
    auto p = dr::kernels::motionEstimation(mp);
    f.signal = p.findSignal("Old");
    f.nest = 0;
    f.accessIndex = dr::kernels::oldAccessIndex();
    cases.push_back(DecodeCase{std::move(p), f, "me-old"});
  }
  return cases;
}

std::vector<i64> expandRuns(const std::vector<AccessRun>& runs) {
  std::vector<i64> out;
  for (const AccessRun& r : runs)
    for (i64 j = 0; j < r.length; ++j) out.push_back(r.base + j * r.stride);
  return out;
}

std::vector<AccessRun> drainRuns(TraceCursor& cursor, i64 maxEvents) {
  std::vector<AccessRun> all, buf;
  while (cursor.nextRuns(buf, maxEvents) > 0)
    all.insert(all.end(), buf.begin(), buf.end());
  return all;
}

// ---------------------------------------------------------------------------
// Run decoding vs the element stream

TEST(RunDecode, ExpandsToElementStreamOnAllShapes) {
  for (const DecodeCase& c : decodeCases()) {
    SCOPED_TRACE(c.label);
    AddressMap map(c.program);
    const Trace t = dr::trace::collectTrace(c.program, map, c.filter);
    TraceCursor cursor(c.program, map, c.filter);
    const std::vector<AccessRun> runs =
        drainRuns(cursor, TraceCursor::kDefaultChunkEvents);
    EXPECT_EQ(expandRuns(runs), t.addresses);
    EXPECT_TRUE(cursor.done());
    EXPECT_EQ(cursor.position(), t.length());
  }
}

TEST(RunDecode, BoundaryStableAcrossChunkSizes) {
  for (const DecodeCase& c : decodeCases()) {
    SCOPED_TRACE(c.label);
    AddressMap map(c.program);
    TraceCursor ref(c.program, map, c.filter);
    const std::vector<AccessRun> refRuns =
        drainRuns(ref, TraceCursor::kDefaultChunkEvents);
    for (i64 maxEvents : {i64{1}, i64{7}, i64{64}, i64{1000}}) {
      TraceCursor cursor(c.program, map, c.filter);
      const std::vector<AccessRun> runs = drainRuns(cursor, maxEvents);
      ASSERT_EQ(runs.size(), refRuns.size()) << "maxEvents=" << maxEvents;
      for (std::size_t i = 0; i < runs.size(); ++i) {
        EXPECT_EQ(runs[i].base, refRuns[i].base);
        EXPECT_EQ(runs[i].stride, refRuns[i].stride);
        EXPECT_EQ(runs[i].length, refRuns[i].length);
        EXPECT_EQ(runs[i].accessIndex, refRuns[i].accessIndex);
      }
    }
  }
}

TEST(RunDecode, SoaAndAosAgree) {
  for (const DecodeCase& c : decodeCases()) {
    SCOPED_TRACE(c.label);
    AddressMap map(c.program);
    TraceCursor ca(c.program, map, c.filter);
    TraceCursor cb(c.program, map, c.filter);
    RunBlock block;
    std::vector<AccessRun> aos;
    for (;;) {
      const i64 na = ca.nextRuns(block, 64);
      const i64 nb = cb.nextRuns(aos, 64);
      ASSERT_EQ(na, nb);
      ASSERT_EQ(block.size(), aos.size());
      ASSERT_EQ(block.events, na);
      for (std::size_t i = 0; i < aos.size(); ++i) {
        EXPECT_EQ(block.base[i], aos[i].base);
        EXPECT_EQ(block.stride[i], aos[i].stride);
        EXPECT_EQ(block.length[i], aos[i].length);
        EXPECT_EQ(block.accessIndex[i], aos[i].accessIndex);
      }
      if (na == 0) break;
    }
  }
}

TEST(RunDecode, RandomNestsExpandToElementStream) {
  Rng rng(dr::support::mixSeed(0xdec0de, 1));
  for (int iter = 0; iter < 200; ++iter) {
    // Random 1-3 deep nest with random (possibly zero / negative)
    // coefficients and random trips, including trip-1 degenerate levels.
    const int depth = static_cast<int>(rng.uniform(1, 3));
    dr::test::PairBox box{0, rng.uniform(0, 11), 0, rng.uniform(0, 7)};
    const i64 b = rng.uniform(-2, 3);
    const i64 cc = rng.uniform(-2, 3);
    const i64 d = rng.uniform(0, 20);
    auto p = depth == 1
                 ? dr::test::genericDoubleLoop({0, rng.uniform(0, 30), 0, 0},
                                               b, cc, d)
                 : dr::test::genericDoubleLoop(box, b, cc, d);
    p.signals[0].dims = {400};
    AddressMap map(p);
    const TraceFilter filter = readsOf(0);
    const Trace t = dr::trace::collectTrace(p, map, filter);
    TraceCursor cursor(p, map, filter);
    const i64 maxEvents = rng.uniform(1, 100);
    EXPECT_EQ(expandRuns(drainRuns(cursor, maxEvents)), t.addresses)
        << "iter " << iter;
  }
}

TEST(RunDecode, HintIsMeanSweepLength) {
  auto p = dr::test::genericDoubleLoop({0, 9, 0, 7}, 1, 1, 0);
  AddressMap map(p);
  TraceCursor cursor(p, map, readsOf(0));
  // Single access, innermost trip 8: one run per sweep at minimum.
  EXPECT_DOUBLE_EQ(cursor.runLengthHint(), 8.0);

  dr::loopir::ArrayAccess second = p.nests[0].body[0];
  p.nests[0].body.push_back(second);
  AddressMap map2(p);
  TraceCursor multi(p, map2, readsOf(0));
  EXPECT_DOUBLE_EQ(multi.runLengthHint(), 1.0);
}

TEST(RunDecode, BudgetRefusalMirrorsNextChunk) {
  auto p = dr::test::genericDoubleLoop({0, 99, 0, 9}, 1, 1, 0);
  AddressMap map(p);
  TraceCursor cursor(p, map, readsOf(0));
  dr::support::RunBudget budget;
  budget.setMaxEvents(25);
  cursor.attachBudget(&budget);
  RunBlock block;
  i64 total = 0;
  while (cursor.nextRuns(block, 10) > 0) total += block.events;
  EXPECT_TRUE(cursor.truncated());
  EXPECT_GT(total, 0);
  EXPECT_LT(total, cursor.length());
  EXPECT_EQ(total, cursor.position());
}

// ---------------------------------------------------------------------------
// pushRun vs push (byte identity under arbitrary slicing)

/// Feed `ids` to a reference accumulator one element at a time and to a
/// test accumulator via pushRun over random slice lengths; distances,
/// histograms, and counters must agree exactly.
template <class Acc, class StateCheck>
void checkPushRun(const std::vector<i64>& ids, Rng& rng,
                  StateCheck&& stateCheck) {
  Acc ref, fast;
  std::vector<i64> refDist, fastDist;
  for (i64 id : ids) refDist.push_back(ref.push(id));
  std::size_t at = 0;
  while (at < ids.size()) {
    const std::size_t len = static_cast<std::size_t>(
        rng.uniform(1, static_cast<i64>(ids.size() - at)));
    fast.pushRun(ids.data() + at, static_cast<i64>(len),
                 [&](i64 dist) { fastDist.push_back(dist); });
    at += len;
  }
  ASSERT_EQ(fastDist, refDist);
  EXPECT_EQ(fast.rawHistogram(), ref.rawHistogram());
  EXPECT_EQ(fast.accesses(), ref.accesses());
  EXPECT_EQ(fast.coldMisses(), ref.coldMisses());
  EXPECT_EQ(fast.distinct(), ref.distinct());
  stateCheck(ref, fast);
}

/// Random id stream biased toward the structured segments pushRun
/// recognizes: cold ramps, back-to-back repeats, arithmetic-progression
/// revisits (stride g over previously seen ids), and uniform noise.
std::vector<i64> structuredIdStream(Rng& rng, i64 events) {
  std::vector<i64> ids;
  i64 nextFresh = 0;
  while (static_cast<i64>(ids.size()) < events) {
    switch (rng.uniform(0, 3)) {
      case 0: {  // cold ramp
        const i64 m = rng.uniform(1, 12);
        for (i64 j = 0; j < m; ++j) ids.push_back(nextFresh++);
        break;
      }
      case 1: {  // repeat stretch
        if (nextFresh == 0) break;
        const i64 id = rng.uniform(0, nextFresh - 1);
        const i64 m = rng.uniform(2, 8);
        for (i64 j = 0; j < m; ++j) ids.push_back(id);
        break;
      }
      case 2: {  // AP revisit sweep
        if (nextFresh < 2) break;
        const i64 g = rng.uniform(1, 4);
        const i64 start = rng.uniform(0, nextFresh - 1);
        const i64 m = rng.uniform(2, 10);
        for (i64 j = 0; j < m; ++j) {
          const i64 id = start + j * g;
          if (id >= nextFresh) break;
          ids.push_back(id);
        }
        break;
      }
      default: {  // noise
        if (nextFresh == 0) break;
        ids.push_back(rng.uniform(0, nextFresh - 1));
        break;
      }
    }
  }
  ids.resize(static_cast<std::size_t>(events));
  // A resize can orphan fresh-id introductions; renumber by first
  // appearance so the dense-id contract holds.
  std::vector<i64> remap(static_cast<std::size_t>(nextFresh), -1);
  i64 next = 0;
  for (i64& id : ids) {
    if (remap[static_cast<std::size_t>(id)] < 0)
      remap[static_cast<std::size_t>(id)] = next++;
    id = remap[static_cast<std::size_t>(id)];
  }
  return ids;
}

TEST(PushRun, OptMatchesPushOnStructuredStreams) {
  Rng rng(dr::support::mixSeed(0x0b57, 2));
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE(iter);
    const std::vector<i64> ids = structuredIdStream(rng, rng.uniform(1, 400));
    checkPushRun<dr::simcore::OptStackAccumulator>(
        ids, rng, [](const auto& ref, const auto& fast) {
          // OPT fold certificates snapshot the tree: state must match too.
          EXPECT_EQ(fast.slotValues(), ref.slotValues());
        });
  }
}

TEST(PushRun, LruMatchesPushOnStructuredStreams) {
  Rng rng(dr::support::mixSeed(0x11c4, 3));
  for (int iter = 0; iter < 60; ++iter) {
    SCOPED_TRACE(iter);
    const std::vector<i64> ids = structuredIdStream(rng, rng.uniform(1, 400));
    checkPushRun<dr::simcore::LruStackAccumulator>(ids, rng,
                                                   [](const auto&, const auto&) {});
  }
}

TEST(PushRun, LruCompactionInsideRun) {
  // Force window compaction mid-run: tiny window cap via many distinct
  // ids, then long AP sweeps. (Window cap is internal; exercise it by
  // sheer volume so cursor_ crosses it repeatedly.)
  Rng rng(dr::support::mixSeed(0xc0de, 4));
  std::vector<i64> ids;
  for (i64 r = 0; r < 6; ++r) {
    for (i64 j = 0; j < 512; ++j) ids.push_back(j);  // AP sweep g=1
    for (i64 j = 0; j < 512; j += 2) ids.push_back(j);  // g=2
  }
  checkPushRun<dr::simcore::LruStackAccumulator>(ids, rng,
                                                 [](const auto&, const auto&) {});
}

TEST(PushRun, DecodedKernelRunsMatchElementPushes) {
  // End to end at the accumulator level: decode runs from real kernels,
  // densify, and compare pushRun against per-element pushes.
  for (const DecodeCase& c : decodeCases()) {
    SCOPED_TRACE(c.label);
    AddressMap map(c.program);
    auto [lo, hi] = TraceCursor(c.program, map, c.filter).addressRange();
    if (hi < lo) continue;

    dr::simcore::StreamingDensifier denRef(lo, hi), denFast(lo, hi);
    dr::simcore::OptStackAccumulator optRef, optFast;
    dr::simcore::LruStackAccumulator lruRef, lruFast;
    std::vector<i64> refOptDist, refLruDist, fastOptDist, fastLruDist;

    TraceCursor elem(c.program, map, c.filter);
    std::vector<i64> chunk;
    while (elem.nextChunk(chunk, 4096) > 0)
      for (i64 addr : chunk) {
        const i64 id = denRef.idOf(addr);
        refOptDist.push_back(optRef.push(id));
        refLruDist.push_back(lruRef.push(id));
      }

    TraceCursor runs(c.program, map, c.filter);
    RunBlock block;
    std::vector<i64> idbuf;
    while (runs.nextRuns(block, 4096) > 0)
      for (std::size_t i = 0; i < block.size(); ++i) {
        idbuf.clear();
        for (i64 j = 0; j < block.length[i]; ++j)
          idbuf.push_back(denFast.idOf(block.base[i] + j * block.stride[i]));
        optFast.pushRun(idbuf.data(), static_cast<i64>(idbuf.size()),
                        [&](i64 d) { fastOptDist.push_back(d); });
        lruFast.pushRun(idbuf.data(), static_cast<i64>(idbuf.size()),
                        [&](i64 d) { fastLruDist.push_back(d); });
      }

    ASSERT_EQ(fastOptDist, refOptDist);
    ASSERT_EQ(fastLruDist, refLruDist);
    EXPECT_EQ(optFast.rawHistogram(), optRef.rawHistogram());
    EXPECT_EQ(lruFast.rawHistogram(), lruRef.rawHistogram());
    EXPECT_EQ(optFast.slotValues(), optRef.slotValues());
    // The decoded runs should actually engage the fast path somewhere.
    if (c.label == "j+k" || c.label == "me-old")
      EXPECT_GT(optFast.runFastEvents() + lruFast.runFastEvents(), 0);
  }
}

}  // namespace
