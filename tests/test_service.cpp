// Tests for the exploration service (src/service/): protocol framing,
// the content-addressed result cache (memory LRU + warm journal layer),
// single-flight deduplication, metrics, and the Unix-domain-socket
// daemon end to end — including the acceptance gates: a burst of
// concurrent identical queries costs exactly one simulation, a warm
// lookup is >= 100x faster than the cold compute, the daemon-served CSV
// is byte-identical to the direct explorer rendering, and malformed
// frames / mid-query disconnects / injected I/O faults never take the
// daemon down.

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "explorer/explorer.h"
#include "frontend/frontend.h"
#include "kernels/conv2d.h"
#include "kernels/motion_estimation.h"
#include "report/report.h"
#include "service/admission.h"
#include "service/cache.h"
#include "service/client.h"
#include "service/metrics.h"
#include "service/protocol.h"
#include "service/router.h"
#include "service/server.h"
#include "service/singleflight.h"
#include "service/transport.h"
#include "support/budget.h"
#include "support/fault.h"
#include "support/journal.h"
#include "support/rng.h"
#include "support/status.h"

namespace {

namespace proto = dr::service::proto;
using dr::service::AdmissionOptions;
using dr::service::CachedCurve;
using dr::service::Client;
using dr::service::ClientOptions;
using dr::service::ResultCache;
using dr::service::Server;
using dr::service::ServerOptions;
using dr::service::SingleFlight;
using dr::support::i64;
using dr::support::Status;
using dr::support::StatusCode;

// ---- helpers ------------------------------------------------------------

std::string uniqueName(const char* stem) {
  static std::atomic<int> counter{0};
  return std::string(stem) + "_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

std::string tempDir(const char* stem) {
  std::string dir = ::testing::TempDir() + uniqueName(stem);
  ::mkdir(dir.c_str(), 0777);
  return dir;
}

/// Sockets live in /tmp directly: sun_path caps at ~100 chars and
/// ::testing::TempDir() can be deep.
std::string socketPath() { return "/tmp/" + uniqueName("drsvc") + ".sock"; }

int connectTo(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) return -1;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool sendAll(int fd, const std::string& bytes) {
  std::size_t done = 0;
  while (done < bytes.size()) {
    ssize_t n = ::send(fd, bytes.data() + done, bytes.size() - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read one Reply frame from `fd` (blocking until complete or closed).
dr::support::Expected<proto::Reply> readReply(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    proto::FrameParse parse = proto::tryParseFrame(buffer);
    if (parse.result == proto::ParseResult::Corrupt) return parse.status;
    if (parse.result == proto::ParseResult::Ok) {
      if (parse.frame.verb != proto::Verb::Reply)
        return Status::error(StatusCode::InvalidInput, "non-Reply frame");
      return proto::decodeReply(parse.frame.payload);
    }
    ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::error(StatusCode::IoError, "connection closed early");
  }
}

dr::support::Expected<proto::Reply> roundTrip(const std::string& path,
                                              proto::Verb verb,
                                              const std::string& payload) {
  int fd = connectTo(path);
  if (fd < 0)
    return Status::error(StatusCode::IoError,
                         "connect " + path + ": " + std::strerror(errno));
  if (!sendAll(fd, proto::encodeFrame(verb, payload))) {
    ::close(fd);
    return Status::error(StatusCode::IoError, "send failed");
  }
  auto reply = readReply(fd);
  ::close(fd);
  return reply;
}

dr::support::Expected<proto::ExploreResult> queryExplore(
    const std::string& path, const std::string& kernel,
    const std::string& signal, std::uint8_t flags = 0) {
  proto::ExploreRequest req;
  req.kernel = kernel;
  req.signal = signal;
  req.flags = flags;
  auto reply =
      roundTrip(path, proto::Verb::Explore, proto::encodeExploreRequest(req));
  if (!reply.hasValue()) return reply.status();
  if (reply->code != StatusCode::Ok)
    return Status::error(reply->code, reply->message);
  return proto::decodeExploreResult(reply->body);
}

CachedCurve makeEntry(std::uint64_t hash, std::size_t csvBytes) {
  CachedCurve e;
  e.configHash = hash;
  e.signalName = "s";
  e.csv = std::string(csvBytes, 'x');
  return e;
}

// ---- protocol -----------------------------------------------------------

TEST(Protocol, FrameRoundTrip) {
  const std::string payload = "hello frames";
  const std::string frame = proto::encodeFrame(proto::Verb::Stats, payload);
  auto parse = proto::tryParseFrame(frame);
  ASSERT_EQ(parse.result, proto::ParseResult::Ok);
  EXPECT_EQ(parse.frame.verb, proto::Verb::Stats);
  EXPECT_EQ(parse.frame.payload, payload);
  EXPECT_EQ(parse.consumed, frame.size());
  EXPECT_TRUE(parse.status.isOk());
}

TEST(Protocol, EveryPrefixNeedsMore) {
  const std::string frame =
      proto::encodeFrame(proto::Verb::Explore, "abcdef");
  for (std::size_t n = 0; n < frame.size(); ++n) {
    auto parse = proto::tryParseFrame(frame.substr(0, n));
    EXPECT_EQ(parse.result, proto::ParseResult::NeedMore) << "prefix " << n;
  }
}

TEST(Protocol, BadMagicIsCorruptImmediately) {
  auto parse = proto::tryParseFrame("X");  // one wrong byte is enough
  EXPECT_EQ(parse.result, proto::ParseResult::Corrupt);
  EXPECT_EQ(parse.status.code(), StatusCode::InvalidInput);
}

TEST(Protocol, ChecksumMismatchIsCorrupt) {
  std::string frame = proto::encodeFrame(proto::Verb::Explore, "payload");
  frame[proto::kHeaderSize] ^= 0x01;  // flip one payload bit
  auto parse = proto::tryParseFrame(frame);
  ASSERT_EQ(parse.result, proto::ParseResult::Corrupt);
  EXPECT_NE(parse.status.message().find("checksum"), std::string::npos);
}

TEST(Protocol, OversizedLengthIsCorruptBeforeBuffering) {
  // Hand-build a header whose length prefix exceeds the cap; the parser
  // must reject it without waiting for the (absurd) payload.
  std::string header;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((proto::kMagic >> (8 * i)) & 0xFF));
  header.push_back(static_cast<char>(proto::kVersion));
  header.push_back(static_cast<char>(proto::Verb::Explore));
  const std::uint32_t huge =
      static_cast<std::uint32_t>(proto::kMaxPayload) + 1;
  for (int i = 0; i < 4; ++i)
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  auto parse = proto::tryParseFrame(header);
  ASSERT_EQ(parse.result, proto::ParseResult::Corrupt);
  EXPECT_NE(parse.status.message().find("cap"), std::string::npos);
}

TEST(Protocol, UnknownVerbAndVersionAreCorrupt) {
  std::string frame = proto::encodeFrame(proto::Verb::Explore, "x");
  std::string badVerb = frame;
  badVerb[5] = 9;  // no such verb
  EXPECT_EQ(proto::tryParseFrame(badVerb).result, proto::ParseResult::Corrupt);
  std::string badVersion = frame;
  badVersion[4] = 1;  // pre-deadline-propagation version: rejected outright
  EXPECT_EQ(proto::tryParseFrame(badVersion).result,
            proto::ParseResult::Corrupt);
  badVersion[4] = 3;  // future version
  EXPECT_EQ(proto::tryParseFrame(badVersion).result,
            proto::ParseResult::Corrupt);
}

TEST(Protocol, ExploreRequestRoundTrip) {
  proto::ExploreRequest req;
  req.kernel = "kernel k { }";
  req.signal = "A";
  req.deadlineMs = 1234;
  req.flags = proto::kFlagNoCache;
  const std::string payload = proto::encodeExploreRequest(req);
  auto decoded = proto::decodeExploreRequest(payload);
  ASSERT_TRUE(decoded.hasValue());
  EXPECT_EQ(decoded->kernel, req.kernel);
  EXPECT_EQ(decoded->signal, req.signal);
  EXPECT_EQ(decoded->deadlineMs, req.deadlineMs);
  EXPECT_EQ(decoded->flags, req.flags);
  // Truncation and trailing garbage are both rejected, never crash.
  for (std::size_t n = 0; n < payload.size(); ++n)
    EXPECT_FALSE(proto::decodeExploreRequest(payload.substr(0, n)).hasValue());
  EXPECT_FALSE(proto::decodeExploreRequest(payload + "x").hasValue());
}

TEST(Protocol, ReplyAndExploreResultRoundTrip) {
  proto::ExploreResult result;
  result.cached = true;
  result.fidelity = 1;
  result.Ctot = 1 << 20;
  result.distinctElements = 4096;
  result.csv = "size,writes\n1,2\n";
  proto::Reply reply;
  reply.code = StatusCode::Ok;
  reply.body = proto::encodeExploreResult(result);
  auto decodedReply = proto::decodeReply(proto::encodeReply(reply));
  ASSERT_TRUE(decodedReply.hasValue());
  EXPECT_EQ(decodedReply->code, StatusCode::Ok);
  auto decoded = proto::decodeExploreResult(decodedReply->body);
  ASSERT_TRUE(decoded.hasValue());
  EXPECT_TRUE(decoded->cached);
  EXPECT_EQ(decoded->Ctot, result.Ctot);
  EXPECT_EQ(decoded->distinctElements, result.distinctElements);
  EXPECT_EQ(decoded->csv, result.csv);
  // An out-of-range status code is rejected.
  std::string bad = proto::encodeReply(reply);
  bad[0] = 100;
  EXPECT_FALSE(proto::decodeReply(bad).hasValue());
}

// ---- result cache -------------------------------------------------------

TEST(ResultCache, EvictsLeastRecentlyUsedPastByteBudget) {
  ResultCache::Options opts;
  opts.maxBytes = 3 * makeEntry(0, 100).bytes();
  ResultCache cache(opts);
  cache.put(makeEntry(1, 100));
  cache.put(makeEntry(2, 100));
  cache.put(makeEntry(3, 100));
  EXPECT_EQ(cache.stats().entries, 3);
  cache.put(makeEntry(4, 100));  // evicts 1, the oldest
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 3);
  EXPECT_EQ(s.evictions, 1);
  EXPECT_FALSE(cache.get(1).has_value());
  EXPECT_TRUE(cache.get(4).has_value());
  EXPECT_LE(s.bytes, opts.maxBytes);
}

TEST(ResultCache, GetRefreshesRecency) {
  ResultCache::Options opts;
  opts.maxBytes = 2 * makeEntry(0, 100).bytes();
  ResultCache cache(opts);
  cache.put(makeEntry(1, 100));
  cache.put(makeEntry(2, 100));
  ASSERT_TRUE(cache.get(1).has_value());  // 1 is now most recent
  cache.put(makeEntry(3, 100));           // evicts 2, not 1
  EXPECT_TRUE(cache.get(1).has_value());
  EXPECT_FALSE(cache.get(2).has_value());
}

TEST(ResultCache, EntryLargerThanBudgetIsNotStored) {
  ResultCache::Options opts;
  opts.maxBytes = 128;
  ResultCache cache(opts);
  cache.put(makeEntry(1, 4096));
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ResultCache, ReplacingAnEntryKeepsAccountingConsistent) {
  ResultCache::Options opts;
  opts.maxBytes = 1 << 20;
  ResultCache cache(opts);
  cache.put(makeEntry(1, 100));
  const i64 before = cache.stats().bytes;
  cache.put(makeEntry(1, 200));  // same key, bigger body
  auto s = cache.stats();
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, before + 100);
  EXPECT_EQ(cache.get(1)->csv.size(), 200u);
}

TEST(ResultCache, GetOrComputeCachesExactResultsByteIdentically) {
  const auto p = dr::kernels::conv2d({});
  dr::explorer::ExploreOptions opts;
  const std::uint64_t hash = dr::explorer::exploreConfigHash(p, 0, opts);
  ResultCache cache(ResultCache::Options{});

  i64 simulated = -1;
  auto first = cache.getOrCompute(hash, p, 0, opts, &simulated);
  ASSERT_TRUE(first.hasValue());
  EXPECT_GT(simulated, 0);  // cold: had to simulate
  auto second = cache.getOrCompute(hash, p, 0, opts, &simulated);
  ASSERT_TRUE(second.hasValue());
  EXPECT_EQ(simulated, 0);  // memory hit
  EXPECT_EQ(first->csv, second->csv);

  auto s = cache.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.entries, 1);

  // Byte-identity with the direct explorer rendering — the same promise
  // explore_kernel --curve-out makes.
  auto direct = dr::explorer::exploreSignalChecked(p, 0, opts);
  ASSERT_TRUE(direct.hasValue());
  EXPECT_EQ(first->csv,
            dr::report::curveCsv(direct->signalName, direct->simulatedCurve));
  EXPECT_EQ(first->Ctot, direct->Ctot);
  EXPECT_EQ(first->distinctElements, direct->distinctElements);
}

TEST(ResultCache, WarmLayerRehydratesFromJournalWithZeroSimulation) {
  const std::string dir = tempDir("warm");
  const auto p = dr::kernels::conv2d({});
  dr::explorer::ExploreOptions opts;
  const std::uint64_t hash = dr::explorer::exploreConfigHash(p, 0, opts);

  ResultCache::Options copts;
  copts.warmDir = dir;
  std::string csvCold;
  {
    ResultCache cold(copts);
    i64 simulated = -1;
    auto r = cold.getOrCompute(hash, p, 0, opts, &simulated);
    ASSERT_TRUE(r.hasValue());
    EXPECT_GT(simulated, 0);
    csvCold = r->csv;
    // The computation left a journal behind at the content address.
    std::ifstream journal(cold.warmPath(hash), std::ios::binary);
    EXPECT_TRUE(journal.good());
  }
  // A fresh process (new cache instance): the journal answers without a
  // single simulated point, byte-identically.
  ResultCache warm(copts);
  i64 simulated = -1;
  auto r = warm.getOrCompute(hash, p, 0, opts, &simulated);
  ASSERT_TRUE(r.hasValue());
  EXPECT_EQ(simulated, 0);
  EXPECT_EQ(r->csv, csvCold);
  auto s = warm.stats();
  EXPECT_EQ(s.warmHits, 1);
  EXPECT_EQ(s.misses, 0);
}

TEST(ResultCache, DegradedResultsAreServedButNeverCached) {
  const auto p = dr::kernels::conv2d({});
  dr::explorer::ExploreOptions opts;
  dr::support::RunBudget budget;
  budget.setMaxEvents(1);  // trips immediately: analytic-only ladder rung
  opts.budget = &budget;
  const std::uint64_t hash = dr::explorer::exploreConfigHash(p, 0, opts);
  ResultCache cache(ResultCache::Options{});
  auto r = cache.getOrCompute(hash, p, 0, opts);
  ASSERT_TRUE(r.hasValue());
  EXPECT_NE(r->fidelity,
            static_cast<std::uint8_t>(dr::simcore::Fidelity::ExactStream));
  EXPECT_EQ(cache.stats().entries, 0);  // degraded: not cached
  // The next identical query recomputes (and could succeed at full
  // fidelity under a healthier budget).
  cache.getOrCompute(hash, p, 0, opts);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(ResultCache, WarmLookupAtLeast100xFasterThanColdCompute) {
  // The in-process acceptance benchmark: memory-layer latency vs the full
  // simulation, on a kernel big enough that the cold side is honest work.
  const auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  dr::explorer::ExploreOptions opts;
  const std::uint64_t hash = dr::explorer::exploreConfigHash(p, 0, opts);
  ResultCache cache(ResultCache::Options{});

  const auto t0 = std::chrono::steady_clock::now();
  auto cold = cache.getOrCompute(hash, p, 0, opts);
  const auto coldNs = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  ASSERT_TRUE(cold.hasValue());

  i64 warmNs = -1;
  for (int i = 0; i < 3; ++i) {  // best of three: immune to scheduler noise
    const auto w0 = std::chrono::steady_clock::now();
    auto warm = cache.getOrCompute(hash, p, 0, opts);
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - w0)
                        .count();
    ASSERT_TRUE(warm.hasValue());
    EXPECT_EQ(warm->csv, cold->csv);
    if (warmNs < 0 || ns < warmNs) warmNs = ns;
  }
  EXPECT_GE(coldNs, 100 * warmNs)
      << "cold " << coldNs << "ns vs warm " << warmNs << "ns";
}

// ---- single-flight ------------------------------------------------------

TEST(SingleFlight, BurstOfIdenticalCallsRunsOneComputation) {
  SingleFlight flight;
  std::atomic<int> computations{0};
  std::atomic<int> leaders{0};
  constexpr int kThreads = 32;
  std::vector<std::thread> threads;
  std::vector<std::string> results(kThreads);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      bool leader = false;
      auto r = flight.run(
          42,
          [&]() -> SingleFlight::Result {
            computations.fetch_add(1);
            // Hold the computation open until every other thread has
            // joined, so the burst is genuinely concurrent.
            while (flight.joins() < kThreads - 1)
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
            CachedCurve c;
            c.configHash = 42;
            c.csv = "the one result";
            return c;
          },
          &leader);
      if (leader) leaders.fetch_add(1);
      ASSERT_TRUE(r.hasValue());
      results[static_cast<std::size_t>(t)] = r->csv;
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(computations.load(), 1);
  EXPECT_EQ(leaders.load(), 1);
  EXPECT_EQ(flight.joins(), kThreads - 1);
  for (const auto& r : results) EXPECT_EQ(r, "the one result");
}

TEST(SingleFlight, SequentialCallsEachLead) {
  SingleFlight flight;
  int computations = 0;
  for (int i = 0; i < 3; ++i) {
    bool leader = false;
    auto r = flight.run(
        7,
        [&]() -> SingleFlight::Result {
          ++computations;
          return makeEntry(7, 8);
        },
        &leader);
    ASSERT_TRUE(r.hasValue());
    EXPECT_TRUE(leader);  // the key is erased after each completion
  }
  EXPECT_EQ(computations, 3);
  EXPECT_EQ(flight.joins(), 0);
}

TEST(SingleFlight, LeaderExceptionPropagatesAndUnblocksTheKey) {
  SingleFlight flight;
  EXPECT_THROW(
      flight.run(9,
                 []() -> SingleFlight::Result {
                   throw std::runtime_error("boom");
                 }),
      std::runtime_error);
  // The key is free again: the next call leads and succeeds.
  bool leader = false;
  auto r = flight.run(
      9, [&]() -> SingleFlight::Result { return makeEntry(9, 8); }, &leader);
  EXPECT_TRUE(leader);
  ASSERT_TRUE(r.hasValue());
}

TEST(SingleFlight, ErrorStatusReachesEveryJoiner) {
  SingleFlight flight;
  auto r = flight.run(11, []() -> SingleFlight::Result {
    return Status::error(StatusCode::InvalidInput, "bad kernel");
  });
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), StatusCode::InvalidInput);
}

// ---- metrics ------------------------------------------------------------

TEST(Metrics, LatencyPercentilesUseBucketUpperBounds) {
  dr::service::Metrics m;
  for (int i = 0; i < 100; ++i) m.recordExploreLatencyUs(10);
  m.recordExploreLatencyUs(1000000);
  auto s = m.snapshot();
  EXPECT_EQ(s.exploreLatency.count, 101);
  EXPECT_EQ(s.exploreLatency.maxUs, 1000000);
  EXPECT_EQ(s.exploreLatency.p50Us, 15);  // 10us lands in [8, 16)
  EXPECT_EQ(s.exploreLatency.p95Us, 15);
  EXPECT_EQ(s.exploreLatency.totalUs, 100 * 10 + 1000000);
}

TEST(Metrics, RenderEmitsOneLinePerCounter) {
  dr::service::Metrics m;
  m.countRequest();
  m.countExplore();
  m.countSimulation();
  auto text = dr::service::Metrics::render(m.snapshot());
  EXPECT_NE(text.find("requests 1\n"), std::string::npos);
  EXPECT_NE(text.find("explore_requests 1\n"), std::string::npos);
  EXPECT_NE(text.find("simulations 1\n"), std::string::npos);
  EXPECT_NE(text.find("cache_hits 0\n"), std::string::npos);
}

// ---- server end to end --------------------------------------------------

TEST(Server, ServesCurveByteIdenticalToDirectExploration) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  const std::string kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});
  auto result = queryExplore(sock, kernel, "Old");
  ASSERT_TRUE(result.hasValue()) << result.status().str();
  EXPECT_FALSE(result->cached);  // first query computes

  // The same request served again is a cache hit...
  auto again = queryExplore(sock, kernel, "Old");
  ASSERT_TRUE(again.hasValue());
  EXPECT_TRUE(again->cached);
  EXPECT_EQ(again->csv, result->csv);

  // ...and both match the direct in-process exploration byte for byte.
  auto compiled = dr::frontend::compileKernelChecked(kernel);
  ASSERT_TRUE(compiled.hasValue());
  const int signal = compiled->findSignal("Old");
  ASSERT_GE(signal, 0);
  auto direct = dr::explorer::exploreSignalChecked(*compiled, signal);
  ASSERT_TRUE(direct.hasValue());
  EXPECT_EQ(result->csv,
            dr::report::curveCsv(direct->signalName, direct->simulatedCurve));
  EXPECT_EQ(result->Ctot, direct->Ctot);

  server.requestShutdown();
  server.wait();
}

TEST(Server, ConcurrentIdenticalBurstSimulatesExactlyOnce) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 4;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  const std::string kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});
  constexpr int kClients = 32;
  std::vector<std::thread> clients;
  std::vector<std::string> csvs(kClients);
  std::atomic<int> failures{0};
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      auto r = queryExplore(sock, kernel, "Old");
      if (r.hasValue())
        csvs[static_cast<std::size_t>(c)] = r->csv;
      else
        failures.fetch_add(1);
    });
  for (auto& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  for (int c = 1; c < kClients; ++c) EXPECT_EQ(csvs[0], csvs[static_cast<std::size_t>(c)]);

  auto s = server.metricsSnapshot();
  EXPECT_EQ(s.exploreRequests, kClients);
  EXPECT_EQ(s.simulations, 1);  // the acceptance gate
  // Every non-leader was served by the cache or joined the in-flight
  // computation; nothing fell through to a second simulation.
  EXPECT_EQ(s.cacheHits + s.inflightJoins, kClients - 1);
  EXPECT_EQ(s.cacheMisses, 1);

  server.requestShutdown();
  server.wait();
}

TEST(Server, SurvivesMalformedFrameAndKeepsServing) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  {
    int fd = connectTo(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendAll(fd, "this is not a frame at all"));
    auto reply = readReply(fd);  // best-effort error reply before the drop
    if (reply.hasValue()) EXPECT_NE(reply->code, StatusCode::Ok);
    ::close(fd);
  }
  {
    // A frame with a corrupted checksum.
    std::string frame = proto::encodeFrame(proto::Verb::Stats, "");
    frame[frame.size() - 1] ^= 0xFF;
    int fd = connectTo(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendAll(fd, frame));
    auto reply = readReply(fd);
    if (reply.hasValue()) EXPECT_NE(reply->code, StatusCode::Ok);
    ::close(fd);
  }

  // The daemon is alive and serves a clean query.
  auto result =
      queryExplore(sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}),
                   "Old");
  EXPECT_TRUE(result.hasValue()) << result.status().str();
  EXPECT_GE(server.metricsSnapshot().protocolErrors, 2);

  server.requestShutdown();
  server.wait();
}

TEST(Server, SurvivesMidQueryDisconnect) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  {
    // Send only half a valid frame, then vanish.
    const std::string frame = proto::encodeFrame(
        proto::Verb::Explore,
        proto::encodeExploreRequest({std::string(1000, 'k'), "", 0, 0}));
    int fd = connectTo(sock);
    ASSERT_GE(fd, 0);
    ASSERT_TRUE(sendAll(fd, frame.substr(0, frame.size() / 2)));
    ::close(fd);
  }
  // Wait until the server has registered the drop, then query cleanly.
  for (int i = 0; i < 100; ++i) {
    if (server.metricsSnapshot().connectionsDropped > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GE(server.metricsSnapshot().connectionsDropped, 1);
  auto result =
      queryExplore(sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}),
                   "Old");
  EXPECT_TRUE(result.hasValue()) << result.status().str();

  server.requestShutdown();
  server.wait();
}

TEST(Server, StatsVerbReportsCountersAndCacheLedger) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  ASSERT_TRUE(
      queryExplore(sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}),
                   "Old")
          .hasValue());
  auto reply = roundTrip(sock, proto::Verb::Stats, "");
  ASSERT_TRUE(reply.hasValue());
  EXPECT_EQ(reply->code, StatusCode::Ok);
  EXPECT_NE(reply->body.find("explore_requests 1\n"), std::string::npos);
  EXPECT_NE(reply->body.find("simulations 1\n"), std::string::npos);
  EXPECT_NE(reply->body.find("cache_entries 1\n"), std::string::npos);

  // report::metricsReport renders the same snapshot as markdown.
  auto md = dr::report::metricsReport(server.metricsSnapshot());
  EXPECT_NE(md.find("| explore requests | 1 |"), std::string::npos);
  EXPECT_NE(md.find("## Result cache"), std::string::npos);

  server.requestShutdown();
  server.wait();
}

TEST(Server, ErrorRepliesForBadKernelAndUnknownSignal) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  auto bad = queryExplore(sock, "this is not a kernel", "");
  ASSERT_FALSE(bad.hasValue());
  EXPECT_EQ(bad.status().code(), StatusCode::InvalidInput);
  auto noSignal = queryExplore(
      sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}), "Nope");
  ASSERT_FALSE(noSignal.hasValue());
  EXPECT_EQ(noSignal.status().code(), StatusCode::InvalidInput);
  EXPECT_EQ(server.metricsSnapshot().exploreErrors, 2);
  // Errors never kill the daemon.
  EXPECT_TRUE(
      queryExplore(sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}),
                   "Old")
          .hasValue());

  server.requestShutdown();
  server.wait();
}

TEST(Server, NoCacheFlagBypassesTheCache) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  const std::string kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});
  auto first = queryExplore(sock, kernel, "Old", proto::kFlagNoCache);
  ASSERT_TRUE(first.hasValue());
  EXPECT_FALSE(first->cached);
  auto second = queryExplore(sock, kernel, "Old", proto::kFlagNoCache);
  ASSERT_TRUE(second.hasValue());
  EXPECT_FALSE(second->cached);  // recomputed, byte-identical anyway
  EXPECT_EQ(first->csv, second->csv);
  auto s = server.metricsSnapshot();
  EXPECT_EQ(s.simulations, 2);
  EXPECT_EQ(s.cacheEntries, 0);

  server.requestShutdown();
  server.wait();
}

TEST(Server, ShutdownVerbDrainsAndReleasesTheSocket) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  auto reply = roundTrip(sock, proto::Verb::Shutdown, "");
  ASSERT_TRUE(reply.hasValue());
  EXPECT_EQ(reply->code, StatusCode::Ok);
  server.wait();  // returns once drained
  EXPECT_TRUE(server.draining());
  EXPECT_LT(connectTo(sock), 0);  // socket file is gone
  EXPECT_EQ(server.metricsSnapshot().shutdownRequests, 1);
}

TEST(Server, WarmDirectorySharedWithCliJournals) {
  const std::string dir = tempDir("served_warm");
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 2;
  opts.cache.warmDir = dir;
  const std::string kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});

  std::string csv;
  {
    Server server(opts);
    ASSERT_TRUE(server.start().isOk());
    auto r = queryExplore(sock, kernel, "Old");
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    csv = r->csv;
    EXPECT_EQ(server.metricsSnapshot().simulations, 1);
    server.requestShutdown();
    server.wait();
  }
  {
    // A restarted daemon rehydrates the same query from the journal the
    // first one left behind: zero simulations, identical bytes.
    Server server(opts);
    ASSERT_TRUE(server.start().isOk());
    auto r = queryExplore(sock, kernel, "Old");
    ASSERT_TRUE(r.hasValue()) << r.status().str();
    EXPECT_TRUE(r->cached);
    EXPECT_EQ(r->csv, csv);
    auto s = server.metricsSnapshot();
    EXPECT_EQ(s.simulations, 0);
    EXPECT_EQ(s.warmHits, 1);
    server.requestShutdown();
    server.wait();
  }
}

// ---- admission control and overload -------------------------------------

TEST(Admission, ValidateOptionsRejectsAbsurdLimits) {
  AdmissionOptions ok;
  EXPECT_TRUE(dr::service::validateAdmissionOptions(ok).isOk());

  AdmissionOptions bad = ok;
  bad.maxQueueDepth = 0;
  EXPECT_EQ(dr::service::validateAdmissionOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = ok;
  bad.maxQueueDepth = 1 << 20;  // a million parked connections is a typo
  EXPECT_EQ(dr::service::validateAdmissionOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = ok;
  bad.tightenStart = 1.5;
  EXPECT_EQ(dr::service::validateAdmissionOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = ok;
  bad.minDeadlineMs = 0;
  EXPECT_EQ(dr::service::validateAdmissionOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = ok;
  bad.pressureDeadlineMs = bad.minDeadlineMs - 1;
  EXPECT_EQ(dr::service::validateAdmissionOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = ok;
  bad.retryAfterCapMs = bad.retryAfterFloorMs - 1;
  EXPECT_EQ(dr::service::validateAdmissionOptions(bad).code(),
            StatusCode::InvalidInput);
}

TEST(Admission, TighteningRampIsMonotoneAndBounded) {
  AdmissionOptions opts;
  opts.tightenStart = 0.5;
  opts.pressureDeadlineMs = 200;
  opts.minDeadlineMs = 10;

  // Below the start: the base budget passes through untouched (including
  // "unlimited", which must stay unlimited while the queue is calm).
  EXPECT_EQ(dr::service::tightenedDeadlineMs(5000, 0.0, opts), 5000);
  EXPECT_EQ(dr::service::tightenedDeadlineMs(0, 0.49, opts), 0);

  // At the start: capped at pressureDeadlineMs; a tighter client
  // deadline is never grown.
  EXPECT_EQ(dr::service::tightenedDeadlineMs(5000, 0.5, opts), 200);
  EXPECT_EQ(dr::service::tightenedDeadlineMs(50, 0.5, opts), 50);

  // Monotone down to the floor at a full queue, never below it.
  i64 prev = dr::service::tightenedDeadlineMs(5000, 0.5, opts);
  for (double p = 0.55; p <= 1.0; p += 0.05) {
    const i64 cur = dr::service::tightenedDeadlineMs(5000, p, opts);
    EXPECT_LE(cur, prev) << "pressure " << p;
    EXPECT_GE(cur, opts.minDeadlineMs);
    prev = cur;
  }
  EXPECT_EQ(dr::service::tightenedDeadlineMs(5000, 1.0, opts),
            opts.minDeadlineMs);
  // An unlimited request under pressure gets the cap, not infinity.
  EXPECT_EQ(dr::service::tightenedDeadlineMs(0, 1.0, opts),
            opts.minDeadlineMs);
}

TEST(Admission, RetryAfterHintStaysInsideTheBand) {
  AdmissionOptions opts;
  opts.retryAfterFloorMs = 25;
  opts.retryAfterCapMs = 2000;
  // No latency observed yet: the floor.
  EXPECT_EQ(dr::service::retryAfterHintMs(opts, 10, 4, 0), 25);
  // Deep queue, slow service: clamped to the cap.
  EXPECT_EQ(dr::service::retryAfterHintMs(opts, 1000, 1, 1'000'000), 2000);
  // In between: scales with the drain estimate and respects the floor.
  const i64 hint = dr::service::retryAfterHintMs(opts, 100, 4, 20'000);
  EXPECT_GE(hint, 25);
  EXPECT_LE(hint, 2000);
}

TEST(Server, StartRejectsInvalidOptionsInsteadOfSpawning) {
  {
    ServerOptions opts;
    opts.endpoint = socketPath();
    opts.workers = 0;  // a broken pool, caught before any thread spawns
    Server server(opts);
    Status st = server.start();
    EXPECT_EQ(st.code(), StatusCode::InvalidInput);
    EXPECT_NE(st.message().find("workers"), std::string::npos);
  }
  {
    ServerOptions opts;
    opts.endpoint = socketPath();
    opts.admission.maxQueueDepth = -4;
    Server server(opts);
    EXPECT_EQ(server.start().code(), StatusCode::InvalidInput);
  }
  {
    ServerOptions opts;  // empty socket path
    Server server(opts);
    EXPECT_EQ(server.start().code(), StatusCode::InvalidInput);
  }
  {
    ServerOptions opts;
    opts.endpoint = socketPath();
    opts.cache.maxBytes = 0;
    Server server(opts);
    EXPECT_EQ(server.start().code(), StatusCode::InvalidInput);
  }
}

TEST(Protocol, V2CarriesRemainingBudgetAndRetryAfter) {
  proto::ExploreRequest req;
  req.kernel = "k";
  req.signal = "s";
  req.deadlineMs = 400;
  req.remainingBudgetMs = 123;
  auto back = proto::decodeExploreRequest(proto::encodeExploreRequest(req));
  ASSERT_TRUE(back.hasValue()) << back.status().str();
  EXPECT_EQ(back->deadlineMs, 400);
  EXPECT_EQ(back->remainingBudgetMs, 123);

  proto::Reply reply;
  reply.code = StatusCode::Unavailable;
  reply.message = "overloaded";
  reply.retryAfterMs = 250;
  auto replyBack = proto::decodeReply(proto::encodeReply(reply));
  ASSERT_TRUE(replyBack.hasValue()) << replyBack.status().str();
  EXPECT_EQ(replyBack->code, StatusCode::Unavailable);
  EXPECT_EQ(replyBack->retryAfterMs, 250);
}

namespace overload {

/// Park the daemon's worker pool: a connection holding half a frame open
/// pins one worker in its recv loop until the fd closes. With workers=1
/// this makes queue occupancy fully deterministic.
int parkWorker(const std::string& sock, Server& server) {
  const std::string frame = proto::encodeFrame(
      proto::Verb::Explore, proto::encodeExploreRequest({"k", "", 0, 0}));
  int fd = connectTo(sock);
  if (fd < 0) return -1;
  if (!sendAll(fd, frame.substr(0, frame.size() / 2))) {
    ::close(fd);
    return -1;
  }
  // The worker has picked the connection up once it counts as accepted.
  for (int i = 0; i < 500; ++i) {
    if (server.metricsSnapshot().connectionsAccepted >= 1) return fd;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ::close(fd);
  return -1;
}

}  // namespace overload

TEST(Server, FullQueueShedsWithStructuredRetryAfterReply) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 1;
  opts.admission.maxQueueDepth = 1;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  int parked = overload::parkWorker(sock, server);
  ASSERT_GE(parked, 0);
  int queued = connectTo(sock);  // fills the depth-1 queue
  ASSERT_GE(queued, 0);
  // Give the accept loop time to enqueue it before flooding.
  for (int i = 0; i < 500 && server.metricsSnapshot().queueDepthHighWater < 1;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // Everything past the bound is shed: a structured Unavailable reply
  // with a retry-after hint, never a silent disconnect.
  int sheds = 0;
  for (int i = 0; i < 3; ++i) {
    int fd = connectTo(sock);
    ASSERT_GE(fd, 0);
    auto reply = readReply(fd);
    ::close(fd);
    ASSERT_TRUE(reply.hasValue()) << reply.status().str();
    EXPECT_EQ(reply->code, StatusCode::Unavailable);
    EXPECT_GE(reply->retryAfterMs, opts.admission.retryAfterFloorMs);
    EXPECT_NE(reply->message.find("queue full"), std::string::npos);
    ++sheds;
  }
  auto s = server.metricsSnapshot();
  EXPECT_GE(s.shedQueueFull, sheds);
  EXPECT_GE(s.overloadReplies, sheds);
  EXPECT_GE(s.queueDepthHighWater, 1);

  ::close(parked);
  ::close(queued);
  server.requestShutdown();
  server.wait();
}

TEST(Server, QueueWaitChargesTheRequestBudget) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 1;
  opts.admission.acceptDeadlineMs = 0;  // isolate budget expiry from sheds
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  int parked = overload::parkWorker(sock, server);
  ASSERT_GE(parked, 0);

  // Queue a request whose own deadline is shorter than the wait it is
  // about to endure: its budget dies in the queue.
  proto::ExploreRequest req;
  req.kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});
  req.signal = "Old";
  req.deadlineMs = 50;
  int fd = connectTo(sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(sendAll(fd, proto::encodeFrame(
                              proto::Verb::Explore,
                              proto::encodeExploreRequest(req))));
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  ::close(parked);  // release the worker; it now picks up the stale request

  auto reply = readReply(fd);
  ::close(fd);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  // Rejected outright: BudgetExceeded, not Unavailable — the client's
  // own deadline is gone, so a retry without a new budget is pointless.
  EXPECT_EQ(reply->code, StatusCode::BudgetExceeded);
  EXPECT_NE(reply->message.find("expired"), std::string::npos);
  EXPECT_EQ(server.metricsSnapshot().expiredRequests, 1);

  server.requestShutdown();
  server.wait();
}

TEST(Server, AcceptDeadlineShedsStaleQueuedConnections) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 1;
  opts.admission.acceptDeadlineMs = 100;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  int parked = overload::parkWorker(sock, server);
  ASSERT_GE(parked, 0);
  int stale = connectTo(sock);
  ASSERT_GE(stale, 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::close(parked);  // the queued connection is now past its deadline

  auto reply = readReply(stale);
  ::close(stale);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  EXPECT_EQ(reply->code, StatusCode::Unavailable);
  EXPECT_NE(reply->message.find("accept deadline"), std::string::npos);
  EXPECT_GE(reply->retryAfterMs, opts.admission.retryAfterFloorMs);
  EXPECT_EQ(server.metricsSnapshot().shedQueueWait, 1);

  server.requestShutdown();
  server.wait();
}

// ---- resilient client ----------------------------------------------------

TEST(Client, RetryDelayIsDeterministicAndHonorsHints) {
  ClientOptions opts;
  opts.backoffBaseMs = 20;
  opts.backoffCapMs = 2000;
  opts.seed = 7;

  // Same (call, attempt) -> same delay; different attempts differ in
  // their jitter stream.
  EXPECT_EQ(Client::retryDelayMs(opts, 3, 1, 0),
            Client::retryDelayMs(opts, 3, 1, 0));

  for (int attempt = 0; attempt < 8; ++attempt) {
    const i64 backoff =
        std::min<i64>(opts.backoffCapMs, opts.backoffBaseMs << attempt);
    const i64 d = Client::retryDelayMs(opts, 0, attempt, 0);
    EXPECT_GE(d, backoff) << "attempt " << attempt;
    EXPECT_LE(d, backoff + backoff / 2) << "attempt " << attempt;
  }
  // The server's retry-after hint is a floor on the delay.
  EXPECT_GE(Client::retryDelayMs(opts, 0, 0, 500), 500);
}

TEST(Client, ValidateOptionsRejectsBrokenConfigs) {
  ClientOptions opts;
  opts.endpoint = "/tmp/x.sock";
  EXPECT_TRUE(dr::service::validateClientOptions(opts).isOk());
  ClientOptions bad = opts;
  bad.endpoint = "";
  EXPECT_EQ(dr::service::validateClientOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = opts;
  bad.maxAttempts = 0;
  EXPECT_EQ(dr::service::validateClientOptions(bad).code(),
            StatusCode::InvalidInput);
  bad = opts;
  bad.backoffCapMs = bad.backoffBaseMs - 1;
  EXPECT_EQ(dr::service::validateClientOptions(bad).code(),
            StatusCode::InvalidInput);
}

TEST(Client, BreakerTripsAfterConsecutiveTransportFailures) {
  ClientOptions opts;
  opts.endpoint = "/tmp/" + uniqueName("drsvc_nowhere") + ".sock";
  opts.maxAttempts = 1;
  opts.breakerThreshold = 2;
  opts.breakerCooldownMs = 60'000;  // stays open for the whole test
  Client client(opts);

  proto::ExploreRequest req;
  req.kernel = "k";
  EXPECT_FALSE(client.explore(req).hasValue());
  EXPECT_EQ(client.breakerState(), Client::BreakerState::Closed);
  EXPECT_FALSE(client.explore(req).hasValue());
  EXPECT_EQ(client.breakerState(), Client::BreakerState::Open);
  EXPECT_EQ(client.stats().breakerTrips, 1);

  // While open, a deadline-bearing call fast-fails without touching the
  // socket: the budget can't cover the cooldown.
  req.deadlineMs = 50;
  const i64 failuresBefore = client.stats().transportFailures;
  auto fast = client.explore(req);
  ASSERT_FALSE(fast.hasValue());
  EXPECT_EQ(fast.status().code(), StatusCode::BudgetExceeded);
  EXPECT_GE(client.stats().breakerFastFails, 1);
  EXPECT_EQ(client.stats().transportFailures, failuresBefore);
}

TEST(Client, BreakerHalfOpenProbeRecoversAgainstALiveServer) {
  const std::string sock = socketPath();
  ClientOptions opts;
  opts.endpoint = sock;
  opts.maxAttempts = 1;
  opts.breakerThreshold = 2;
  opts.breakerCooldownMs = 100;
  Client client(opts);

  proto::ExploreRequest req;
  req.kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});
  req.signal = "Old";
  EXPECT_FALSE(client.explore(req).hasValue());  // nothing listening yet
  EXPECT_FALSE(client.explore(req).hasValue());
  ASSERT_EQ(client.breakerState(), Client::BreakerState::Open);

  ServerOptions sopts;
  sopts.endpoint = sock;
  sopts.workers = 2;
  Server server(sopts);
  ASSERT_TRUE(server.start().isOk());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // The cooldown has elapsed: the next call is the half-open probe, it
  // succeeds, and the breaker closes.
  auto reply = client.explore(req);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  EXPECT_EQ(reply->code, StatusCode::Ok);
  EXPECT_EQ(client.breakerState(), Client::BreakerState::Closed);
  EXPECT_EQ(client.stats().breakerResets, 1);

  server.requestShutdown();
  server.wait();
}

TEST(Client, RetriesThroughShedsUntilAdmitted) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 1;
  opts.admission.maxQueueDepth = 1;
  opts.admission.retryAfterFloorMs = 10;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  int parked = overload::parkWorker(sock, server);
  ASSERT_GE(parked, 0);
  int queued = connectTo(sock);
  ASSERT_GE(queued, 0);
  for (int i = 0; i < 500 && server.metricsSnapshot().queueDepthHighWater < 1;
       ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // The client keeps getting shed while the queue is full; once the
  // parked connection releases, a retry is admitted and served.
  ClientOptions copts;
  copts.endpoint = sock;
  copts.maxAttempts = 50;
  copts.backoffBaseMs = 5;
  copts.backoffCapMs = 50;
  Client client(copts);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    ::close(parked);
    ::close(queued);
  });
  proto::ExploreRequest req;
  req.kernel = dr::kernels::motionEstimationSource({32, 32, 4, 4});
  req.signal = "Old";
  auto reply = client.explore(req);
  releaser.join();
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  EXPECT_EQ(reply->code, StatusCode::Ok);
  const auto cs = client.stats();
  EXPECT_GE(cs.retries, 1);
  EXPECT_GE(cs.retryAfterHonored, 1);
  EXPECT_GE(cs.retryAfterSuccesses, 1);
  EXPECT_GE(server.metricsSnapshot().shedQueueFull, 1);

  server.requestShutdown();
  server.wait();
}

TEST(Client, BurstSurvivesServerRestartOnTheSameCacheDir) {
  const std::string dir = tempDir("restart_burst");
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 4;
  opts.cache.warmDir = dir;
  auto server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->start().isOk());

  const std::string kernel =
      dr::kernels::motionEstimationSource({32, 32, 4, 4});
  // The cold CLI reference every served curve must match byte for byte.
  auto compiled = dr::frontend::compileKernelChecked(kernel);
  ASSERT_TRUE(compiled.hasValue());
  auto direct = dr::explorer::exploreSignalChecked(
      *compiled, compiled->findSignal("Old"));
  ASSERT_TRUE(direct.hasValue());
  const std::string reference =
      dr::report::curveCsv(direct->signalName, direct->simulatedCurve);

  ClientOptions copts;
  copts.endpoint = sock;
  copts.maxAttempts = 20;
  copts.backoffBaseMs = 10;
  copts.backoffCapMs = 100;
  copts.breakerThreshold = 0;  // retries alone must ride out the restart
  Client client(copts);

  constexpr int kClients = 32;
  std::vector<std::string> csvs(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      // Stagger the burst so some queries land before, some during, and
      // some after the restart window.
      std::this_thread::sleep_for(std::chrono::milliseconds(5 * c));
      proto::ExploreRequest req;
      req.kernel = kernel;
      req.signal = "Old";
      auto reply = client.explore(req);
      auto& err = errors[static_cast<std::size_t>(c)];
      if (!reply.hasValue()) {
        err = reply.status().str();
        return;
      }
      if (reply->code != StatusCode::Ok) {
        err = reply->message;
        return;
      }
      auto result = proto::decodeExploreResult(reply->body);
      if (!result.hasValue()) {
        err = result.status().str();
        return;
      }
      csvs[static_cast<std::size_t>(c)] = result->csv;
    });

  // Kill the daemon mid-burst and restart it on the same cache dir. The
  // held-open window guarantees part of the burst lands while nothing is
  // listening — those clients must reconnect-and-retry, not fail.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  server->requestShutdown();
  server->wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server = std::make_unique<Server>(opts);
  ASSERT_TRUE(server->start().isOk());

  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(errors[static_cast<std::size_t>(c)], "") << "client " << c;
    EXPECT_EQ(csvs[static_cast<std::size_t>(c)], reference)
        << "client " << c << " served a corrupt curve";
  }
  EXPECT_GE(client.stats().retries, 1);  // somebody hit the restart window

  server->requestShutdown();
  server->wait();
}

// ---- transport ----------------------------------------------------------

namespace transport = dr::service::transport;

TEST(Transport, ParseEndpointAcceptsEveryDocumentedForm) {
  auto plainUnix = transport::parseEndpoint("/tmp/x.sock");
  ASSERT_TRUE(plainUnix.hasValue());
  EXPECT_EQ(plainUnix->kind, transport::Endpoint::Kind::Unix);
  EXPECT_EQ(plainUnix->path, "/tmp/x.sock");
  EXPECT_EQ(transport::toString(*plainUnix), "/tmp/x.sock");

  auto forcedUnix = transport::parseEndpoint("unix:/tmp/y.sock");
  ASSERT_TRUE(forcedUnix.hasValue());
  EXPECT_EQ(forcedUnix->kind, transport::Endpoint::Kind::Unix);
  EXPECT_EQ(forcedUnix->path, "/tmp/y.sock");

  auto dotted = transport::parseEndpoint("127.0.0.1:7070");
  ASSERT_TRUE(dotted.hasValue());
  EXPECT_EQ(dotted->kind, transport::Endpoint::Kind::Tcp);
  EXPECT_EQ(dotted->host, "127.0.0.1");
  EXPECT_EQ(dotted->port, 7070);
  EXPECT_EQ(transport::toString(*dotted), "127.0.0.1:7070");

  auto named = transport::parseEndpoint("localhost:8080");
  ASSERT_TRUE(named.hasValue());
  EXPECT_EQ(named->kind, transport::Endpoint::Kind::Tcp);
  EXPECT_EQ(named->host, "localhost");
  EXPECT_EQ(named->port, 8080);

  auto forcedTcp = transport::parseEndpoint("tcp:127.0.0.1:9090");
  ASSERT_TRUE(forcedTcp.hasValue());
  EXPECT_EQ(forcedTcp->kind, transport::Endpoint::Kind::Tcp);
  EXPECT_EQ(forcedTcp->port, 9090);
}

TEST(Transport, ParseEndpointRejectsBrokenSpecs) {
  const auto rejects = [](const std::string& spec) {
    auto ep = transport::parseEndpoint(spec);
    EXPECT_FALSE(ep.hasValue()) << spec;
    if (!ep.hasValue())
      EXPECT_EQ(ep.status().code(), StatusCode::InvalidInput) << spec;
  };
  rejects("");
  rejects("unix:");
  rejects("tcp:127.0.0.1");      // forced TCP without a port
  rejects("127.0.0.1:");         // empty port token
  rejects("127.0.0.1:abc");      // non-numeric port
  rejects("127.0.0.1:70000");    // out of range
  rejects(":7070");              // no host
  rejects("/" + std::string(200, 'a'));  // over-long unix path

  // Port 0 is listen-only: rejected for clients, accepted for listeners.
  EXPECT_FALSE(transport::parseEndpoint("127.0.0.1:0").hasValue());
  auto ephemeral =
      transport::parseEndpoint("127.0.0.1:0", /*allowEphemeralPort=*/true);
  ASSERT_TRUE(ephemeral.hasValue());
  EXPECT_EQ(ephemeral->port, 0);
}

TEST(Transport, EphemeralTcpListenerReportsItsBoundPort) {
  auto ep = transport::parseEndpoint("127.0.0.1:0",
                                     /*allowEphemeralPort=*/true);
  ASSERT_TRUE(ep.hasValue());
  auto listener = transport::listenOn(*ep);
  ASSERT_TRUE(listener.hasValue()) << listener.status().str();
  EXPECT_GT(listener->bound.port, 0);
  EXPECT_EQ(listener->bound.host, "127.0.0.1");
  ::close(listener->fd);
}

// ---- TCP server / health verb -------------------------------------------

/// A live daemon on an ephemeral TCP port, endpoint resolved.
struct TcpShard {
  std::unique_ptr<Server> server;
  std::string endpoint;
};

TcpShard startTcpShard(int workers = 2) {
  ServerOptions opts;
  opts.endpoint = "127.0.0.1:0";
  opts.workers = workers;
  TcpShard shard;
  shard.server = std::make_unique<Server>(opts);
  auto st = shard.server->start();
  EXPECT_TRUE(st.isOk()) << st.str();
  shard.endpoint = transport::toString(shard.server->boundEndpoint());
  return shard;
}

TEST(Server, TcpEndpointServesByteIdenticalCurve) {
  const std::string kernel =
      dr::kernels::motionEstimationSource({32, 32, 4, 4});
  auto compiled = dr::frontend::compileKernelChecked(kernel);
  ASSERT_TRUE(compiled.hasValue());
  const int sig = compiled->findSignal("Old");
  auto direct = dr::explorer::exploreSignalChecked(*compiled, sig, {});
  ASSERT_TRUE(direct.hasValue());
  const std::string expected =
      dr::report::curveCsv(direct->signalName, direct->simulatedCurve);

  TcpShard shard = startTcpShard();
  ClientOptions copts;
  copts.endpoint = shard.endpoint;
  Client client(copts);
  proto::ExploreRequest req;
  req.kernel = kernel;
  req.signal = "Old";
  auto reply = client.explore(req);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  ASSERT_EQ(reply->code, StatusCode::Ok) << reply->message;
  auto result = proto::decodeExploreResult(reply->body);
  ASSERT_TRUE(result.hasValue());
  // Same byte-identity gate the Unix-socket path honors.
  EXPECT_EQ(result->csv, expected);

  shard.server->requestShutdown();
  shard.server->wait();
}

TEST(Server, HealthVerbAnswersWithoutTouchingTheCache) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  opts.workers = 3;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  auto reply = roundTrip(sock, proto::Verb::Health, "");
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  ASSERT_EQ(reply->code, StatusCode::Ok) << reply->message;
  auto info = proto::decodeHealthInfo(reply->body);
  ASSERT_TRUE(info.hasValue()) << info.status().str();
  EXPECT_FALSE(info->draining);
  EXPECT_EQ(info->workers, 3);
  EXPECT_GE(info->queueDepth, 0);
  EXPECT_GE(server.metricsSnapshot().healthRequests, 1);

  server.requestShutdown();
  server.wait();
}

TEST(Server, V1FrameIsRejectedWithAStructuredError) {
  const std::string sock = socketPath();
  ServerOptions opts;
  opts.endpoint = sock;
  Server server(opts);
  ASSERT_TRUE(server.start().isOk());

  std::string frame = proto::encodeFrame(proto::Verb::Health, "");
  frame[4] = 1;  // regress the version byte to the pre-budget protocol
  int fd = connectTo(sock);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(sendAll(fd, frame));
  auto reply = readReply(fd);
  ::close(fd);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  EXPECT_EQ(reply->code, StatusCode::InvalidInput);
  EXPECT_NE(reply->message.find("version"), std::string::npos)
      << reply->message;

  server.requestShutdown();
  server.wait();
}

// ---- per-endpoint circuit breakers --------------------------------------

TEST(Client, BreakerStateIsPerEndpointNotPerProcess) {
  TcpShard live = startTcpShard();
  const std::string deadEndpoint = socketPath();  // nothing listening

  dr::service::BreakerRegistry registry;
  ClientOptions dead;
  dead.endpoint = deadEndpoint;
  dead.maxAttempts = 1;
  dead.connectTimeoutMs = 200;
  dead.breakerThreshold = 2;
  Client deadClient(dead, registry.acquire(deadEndpoint, 2, 60000));

  ClientOptions liveOpts;
  liveOpts.endpoint = live.endpoint;
  liveOpts.breakerThreshold = 2;
  Client liveClient(liveOpts, registry.acquire(live.endpoint, 2, 60000));

  // Two consecutive transport failures trip the dead endpoint's breaker.
  EXPECT_FALSE(deadClient.call(proto::Verb::Stats, "").hasValue());
  EXPECT_FALSE(deadClient.call(proto::Verb::Stats, "").hasValue());
  EXPECT_EQ(deadClient.breakerState(), Client::BreakerState::Open);

  // The healthy endpoint's breaker is untouched by its neighbor's death.
  auto reply = liveClient.call(proto::Verb::Stats, "");
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  EXPECT_EQ(reply->code, StatusCode::Ok);
  EXPECT_EQ(liveClient.breakerState(), Client::BreakerState::Closed);

  // And a second client of the dead endpoint shares the tripped breaker
  // instead of paying the connect timeout again.
  Client deadTwin(dead, registry.acquire(deadEndpoint, 2, 60000));
  EXPECT_EQ(deadTwin.breakerState(), Client::BreakerState::Open);

  live.server->requestShutdown();
  live.server->wait();
}

// ---- shard ring ---------------------------------------------------------

TEST(Router, RingPreferenceIsDeterministicAndCoversEveryShard) {
  const std::vector<std::string> endpoints = {
      "127.0.0.1:7001", "127.0.0.1:7002", "127.0.0.1:7003", "127.0.0.1:7004"};
  dr::service::ShardRing ring(endpoints, 64);
  ASSERT_EQ(ring.shardCount(), 4);

  std::vector<int> ownerCounts(endpoints.size(), 0);
  for (std::uint64_t key = 0; key < 512; ++key) {
    const std::uint64_t h = dr::support::mixSeed(key, 0x9e3779b9ULL);
    const std::vector<int> pref = ring.preference(h);
    ASSERT_EQ(pref.size(), endpoints.size());
    // The walk visits every shard exactly once, primary first.
    std::vector<int> sorted = pref;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(pref.front(), ring.primary(h));
    EXPECT_EQ(pref, ring.preference(h));  // same key, same order
    ++ownerCounts[static_cast<std::size_t>(pref.front())];
  }
  // 64 virtual nodes per shard spread ownership across all of them.
  for (std::size_t s = 0; s < ownerCounts.size(); ++s)
    EXPECT_GT(ownerCounts[s], 0) << "shard " << s << " owns nothing";
}

// ---- router -------------------------------------------------------------

std::uint64_t configHashOf(const std::string& kernel,
                           const std::string& signal) {
  auto compiled = dr::frontend::compileKernelChecked(kernel);
  EXPECT_TRUE(compiled.hasValue());
  return dr::explorer::exploreConfigHash(*compiled,
                                         compiled->findSignal(signal), {});
}

TEST(Router, ValidateOptionsRejectsBrokenConfigs) {
  dr::service::RouterOptions good;
  good.listen = "127.0.0.1:0";
  good.shards = {"127.0.0.1:7001", "127.0.0.1:7002"};
  EXPECT_TRUE(dr::service::validateRouterOptions(good).isOk());

  auto bad = good;
  bad.listen = "";
  EXPECT_FALSE(dr::service::validateRouterOptions(bad).isOk());
  bad = good;
  bad.shards.clear();
  EXPECT_FALSE(dr::service::validateRouterOptions(bad).isOk());
  bad = good;
  bad.shards.push_back("127.0.0.1:7001");  // duplicate
  EXPECT_FALSE(dr::service::validateRouterOptions(bad).isOk());
  bad = good;
  bad.shards.push_back("127.0.0.1:0");  // ephemeral port on a client spec
  EXPECT_FALSE(dr::service::validateRouterOptions(bad).isOk());
  bad = good;
  bad.workers = 0;
  EXPECT_FALSE(dr::service::validateRouterOptions(bad).isOk());
  bad = good;
  bad.hedgeMinDelayMs = 100;
  bad.hedgeMaxDelayMs = 10;
  EXPECT_FALSE(dr::service::validateRouterOptions(bad).isOk());
}

TEST(Router, FailsOverWhenThePrimaryShardDies) {
  TcpShard a = startTcpShard();
  TcpShard b = startTcpShard();

  dr::service::RouterOptions ropts;
  ropts.listen = "127.0.0.1:0";
  ropts.shards = {a.endpoint, b.endpoint};
  ropts.hedge = false;
  ropts.healthIntervalMs = 0;  // passive accounting only: deterministic
  ropts.client.connectTimeoutMs = 300;
  ropts.client.backoffBaseMs = 1;
  dr::service::Router router(ropts);
  ASSERT_TRUE(router.start().isOk());
  const std::string front = transport::toString(router.boundEndpoint());

  const std::string kernel =
      dr::kernels::motionEstimationSource({32, 32, 4, 4});
  const std::uint64_t hash = configHashOf(kernel, "Old");
  const std::vector<int> pref = router.ring().preference(hash);
  ASSERT_EQ(pref.size(), 2u);
  TcpShard& primary = pref.front() == 0 ? a : b;

  // Kill the shard that owns this kernel; the replica must answer.
  primary.server->requestShutdown();
  primary.server->wait();

  ClientOptions copts;
  copts.endpoint = front;
  Client client(copts);
  proto::ExploreRequest req;
  req.kernel = kernel;
  req.signal = "Old";
  for (int i = 0; i < 3; ++i) {
    auto reply = client.explore(req);
    ASSERT_TRUE(reply.hasValue()) << reply.status().str();
    ASSERT_EQ(reply->code, StatusCode::Ok) << reply->message;
  }

  const dr::service::RouterStats stats = router.stats();
  EXPECT_GE(stats.failovers, 1);
  // Two passive strikes took the primary Down; later queries skip it
  // outright instead of re-paying the connect failure.
  EXPECT_FALSE(stats.shardUp[static_cast<std::size_t>(pref.front())]);
  EXPECT_GE(stats.shardDownSkips, 1);
  EXPECT_GE(stats.shardForwards[static_cast<std::size_t>(pref[1])], 3);

  router.requestShutdown();
  router.wait();
  TcpShard& replica = pref.front() == 0 ? b : a;
  replica.server->requestShutdown();
  replica.server->wait();
}

TEST(Router, HedgeWinsAgainstABlackholedPrimary) {
  // The black hole accepts connections into its backlog and never reads:
  // the worst failure mode — alive at the TCP level, dead above it.
  auto bhEp = transport::parseEndpoint("127.0.0.1:0",
                                       /*allowEphemeralPort=*/true);
  ASSERT_TRUE(bhEp.hasValue());
  auto blackhole = transport::listenOn(*bhEp);
  ASSERT_TRUE(blackhole.hasValue());
  const std::string bhSpec = transport::toString(blackhole->bound);
  TcpShard live = startTcpShard();

  dr::service::RouterOptions ropts;
  ropts.listen = "127.0.0.1:0";
  ropts.shards = {bhSpec, live.endpoint};
  ropts.hedge = true;
  ropts.hedgeDelayMs = 25;
  ropts.healthIntervalMs = 0;  // keep the black hole officially "up"
  ropts.client.maxAttempts = 1;
  ropts.client.connectTimeoutMs = 500;
  ropts.client.recvTimeoutMs = 500;  // bounds the losing forward's drain
  dr::service::Router router(ropts);
  ASSERT_TRUE(router.start().isOk());

  // Find a kernel whose ring primary is the black hole, so the hedge is
  // what saves the query.
  std::string kernel;
  for (int h : {16, 32, 64, 128}) {
    const std::string candidate =
        dr::kernels::motionEstimationSource({h, 32, 4, 4});
    if (router.ring().primary(configHashOf(candidate, "Old")) == 0) {
      kernel = candidate;
      break;
    }
  }
  if (kernel.empty())
    GTEST_SKIP() << "no candidate kernel hashed to the black-hole shard";

  // Pre-warm the live shard so the hedged forward is a cache hit: the
  // hedge must beat the primary's 500 ms recv timeout deterministically,
  // not race a cold first-time curve computation that can lose — in which
  // case the router still answers Ok, but via failover instead of a hedge
  // win.
  {
    ClientOptions warm;
    warm.endpoint = live.endpoint;
    warm.recvTimeoutMs = 5000;
    proto::ExploreRequest wreq;
    wreq.kernel = kernel;
    wreq.signal = "Old";
    auto w = Client(warm).explore(wreq);
    ASSERT_TRUE(w.hasValue()) << w.status().str();
    ASSERT_EQ(w->code, StatusCode::Ok) << w->message;
  }

  ClientOptions copts;
  copts.endpoint = transport::toString(router.boundEndpoint());
  copts.recvTimeoutMs = 5000;
  Client client(copts);
  proto::ExploreRequest req;
  req.kernel = kernel;
  req.signal = "Old";
  auto reply = client.explore(req);
  ASSERT_TRUE(reply.hasValue()) << reply.status().str();
  ASSERT_EQ(reply->code, StatusCode::Ok) << reply->message;

  const dr::service::RouterStats stats = router.stats();
  EXPECT_GE(stats.hedgesLaunched, 1);
  EXPECT_GE(stats.hedgesWon, 1);
  EXPECT_GE(stats.shardForwards[1], 1);

  router.requestShutdown();
  router.wait();
  ::close(blackhole->fd);
  live.server->requestShutdown();
  live.server->wait();
}

TEST(Router, HealthProbesFlapAShardDownAndBackUp) {
  TcpShard a = startTcpShard();
  TcpShard b = startTcpShard();

  dr::service::RouterOptions ropts;
  ropts.listen = "127.0.0.1:0";
  ropts.shards = {a.endpoint, b.endpoint};
  ropts.hedge = false;
  ropts.healthIntervalMs = 25;
  ropts.healthTimeoutMs = 200;
  dr::service::Router router(ropts);
  ASSERT_TRUE(router.start().isOk());

  const auto waitForUpState = [&](std::size_t idx, bool want) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      if (router.stats().shardUp[idx] == want) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  };
  ASSERT_TRUE(waitForUpState(1, true));

  // Kill shard B: probes must take it Down within a few intervals.
  b.server->requestShutdown();
  b.server->wait();
  EXPECT_TRUE(waitForUpState(1, false));

  // Restart it on the same (now concrete) endpoint: probes bring it back.
  ServerOptions again;
  again.endpoint = b.endpoint;
  again.workers = 2;
  b.server = std::make_unique<Server>(again);
  ASSERT_TRUE(b.server->start().isOk());
  EXPECT_TRUE(waitForUpState(1, true));

  const dr::service::RouterStats stats = router.stats();
  EXPECT_GE(stats.healthProbes, 2);
  EXPECT_GE(stats.healthProbeFailures, 1);
  EXPECT_GE(stats.healthFlaps, 2);  // Up->Down and Down->Up

  router.requestShutdown();
  router.wait();
  a.server->requestShutdown();
  a.server->wait();
  b.server->requestShutdown();
  b.server->wait();
}

// ---- warm-cache hygiene -------------------------------------------------

TEST(Cache, DiskFullDegradesWarmCacheToRecompute) {
  if constexpr (!dr::support::fault::kCompiledIn) {
    GTEST_SKIP() << "fault injection not compiled in (DR_FAULT_INJECT=OFF)";
  } else {
    dr::service::ResultCache::Options copts;
    copts.warmDir = tempDir("dr_diskfull_cache");
    dr::service::ResultCache cache(copts);

    const std::string kernel =
        dr::kernels::motionEstimationSource({32, 32, 4, 4});
    auto compiled = dr::frontend::compileKernelChecked(kernel);
    ASSERT_TRUE(compiled.hasValue());
    const int sig = compiled->findSignal("Old");
    const std::uint64_t hash =
        dr::explorer::exploreConfigHash(*compiled, sig, {});

    // Every journal write hits ENOSPC: the warm layer must degrade to an
    // unjournaled recompute, never fail the query or leave a live torn
    // journal behind.
    dr::support::fault::armRandom(dr::support::fault::FaultSite::DiskFull,
                                  /*seed=*/1, /*p=*/1.0);
    auto result = cache.getOrCompute(hash, *compiled, sig, {});
    dr::support::fault::disarmAll();
    ASSERT_TRUE(result.hasValue()) << result.status().str();
    EXPECT_FALSE(result->csv.empty());
    EXPECT_GE(cache.stats().journalFailures, 1);
    // Whatever the journal attempt left behind is quarantined, not live.
    std::ifstream journal(cache.warmPath(hash));
    EXPECT_FALSE(journal.good());

    // With the disk healthy again the same query journals normally.
    dr::service::ResultCache fresh(copts);
    auto healthy = fresh.getOrCompute(hash, *compiled, sig, {});
    ASSERT_TRUE(healthy.hasValue());
    EXPECT_EQ(healthy->csv, result->csv);
    std::ifstream written(fresh.warmPath(hash));
    EXPECT_TRUE(written.good());
  }
}

TEST(Cache, ScrubQuarantinesJournalsWithNoCommittedPrefix) {
  const std::string dir = tempDir("dr_scrub");

  // One clean journal...
  {
    dr::support::JournalHeader header;
    header.configHash = 0xc1ea7ULL;
    auto writer =
        dr::support::JournalWriter::create(dir + "/good.journal", header);
    ASSERT_TRUE(writer.hasValue());
    dr::support::JournalPoint pt;
    pt.size = 2;
    pt.writes = 1;
    pt.reads = 4;
    ASSERT_TRUE(writer->appendPoint(pt).isOk());
    ASSERT_TRUE(writer->close().isOk());
  }
  // ...one valid journal with a flipped header byte (CRC now fails)...
  {
    dr::support::JournalHeader header;
    header.configHash = 0xf11bULL;
    auto writer =
        dr::support::JournalWriter::create(dir + "/flip.journal", header);
    ASSERT_TRUE(writer.hasValue());
    ASSERT_TRUE(writer->close().isOk());
    std::fstream f(dir + "/flip.journal",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(6);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(6);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
  }
  // ...and one file of plain garbage.
  {
    std::ofstream garbage(dir + "/junk.journal", std::ios::binary);
    garbage << "this was never a journal";
  }

  auto report = dr::service::scrubWarmDir(dir);
  ASSERT_TRUE(report.hasValue()) << report.status().str();
  EXPECT_EQ(report->scanned, 3);
  EXPECT_EQ(report->clean, 1);
  EXPECT_EQ(report->quarantined, 2);
  ASSERT_EQ(report->quarantinedFiles.size(), 2u);
  EXPECT_EQ(report->quarantinedFiles[0], dir + "/flip.journal");
  EXPECT_EQ(report->quarantinedFiles[1], dir + "/junk.journal");
  // Quarantine renames the files out of the *.journal resolution path.
  EXPECT_FALSE(std::ifstream(dir + "/junk.journal").good());
  EXPECT_TRUE(std::ifstream(dir + "/junk.journal.corrupt").good());
  EXPECT_FALSE(std::ifstream(dir + "/flip.journal").good());

  // A second pass has nothing left to quarantine.
  auto again = dr::service::scrubWarmDir(dir);
  ASSERT_TRUE(again.hasValue());
  EXPECT_EQ(again->scanned, 1);
  EXPECT_EQ(again->clean, 1);
  EXPECT_EQ(again->quarantined, 0);
}

TEST(Server, InjectedIoFaultDropsOnlyThatConnection) {
  if constexpr (!dr::support::fault::kCompiledIn) {
    GTEST_SKIP() << "fault injection not compiled in (DR_FAULT_INJECT=OFF)";
  } else {
    const std::string sock = socketPath();
    ServerOptions opts;
    opts.endpoint = sock;
    opts.workers = 2;
    Server server(opts);
    ASSERT_TRUE(server.start().isOk());

    dr::support::fault::arm(dr::support::fault::FaultSite::ServiceIo, 1);
    auto faulted = queryExplore(
        sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}), "Old");
    EXPECT_FALSE(faulted.hasValue());  // that connection died
    dr::support::fault::disarmAll();

    // The daemon survived and the next query is served normally.
    auto ok = queryExplore(
        sock, dr::kernels::motionEstimationSource({32, 32, 4, 4}), "Old");
    EXPECT_TRUE(ok.hasValue()) << ok.status().str();
    EXPECT_GE(server.metricsSnapshot().connectionsDropped, 1);

    server.requestShutdown();
    server.wait();
  }
}

}  // namespace
