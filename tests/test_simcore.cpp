// Unit + property tests for the buffer simulators: Belady/OPT, LRU, FIFO,
// the one-pass Mattson LRU stack distances and the reuse-curve sweeps.

#include <gtest/gtest.h>

#include "helpers.h"
#include "simcore/buffer_sim.h"
#include "simcore/lru_stack.h"
#include "simcore/opt_stack.h"
#include "simcore/reuse_curve.h"
#include "support/rng.h"
#include "trace/walker.h"

namespace {

using namespace dr::simcore;
using dr::support::i64;
using dr::trace::Trace;

Trace makeTrace(std::initializer_list<i64> addrs) {
  Trace t;
  t.addresses = addrs;
  return t;
}

Trace randomTrace(std::uint64_t seed, i64 length, i64 universe) {
  dr::support::Rng rng(seed);
  Trace t;
  t.addresses.reserve(static_cast<std::size_t>(length));
  for (i64 i = 0; i < length; ++i)
    t.addresses.push_back(rng.uniform(0, universe - 1));
  return t;
}

TEST(NextUse, Basics) {
  Trace t = makeTrace({1, 2, 1, 3, 2, 1});
  auto nu = computeNextUse(t);
  EXPECT_EQ(nu[0], 2);
  EXPECT_EQ(nu[1], 4);
  EXPECT_EQ(nu[2], 5);
  EXPECT_EQ(nu[3], 6);  // no next use -> trace length
  EXPECT_EQ(nu[4], 6);
  EXPECT_EQ(nu[5], 6);
}

TEST(Opt, ZeroAndHugeCapacity) {
  Trace t = makeTrace({1, 2, 1, 3, 2, 1});
  EXPECT_EQ(simulateOpt(t, 0).misses, 6);
  SimResult full = simulateOpt(t, 100);
  EXPECT_EQ(full.misses, 3);  // compulsory only
  EXPECT_DOUBLE_EQ(full.reuseFactor(), 2.0);
}

TEST(Opt, ClassicBeladyExample) {
  // OPT on 1,2,3,4,1,2,5,1,2,3,4,5 with capacity 3: 7 misses (textbook).
  Trace t = makeTrace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  EXPECT_EQ(simulateOpt(t, 3).misses, 7);
}

TEST(Opt, NeverWorseThanLruOrFifo) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Trace t = randomTrace(seed, 600, 40);
    for (i64 cap : {1, 2, 4, 8, 16, 32}) {
      i64 opt = simulateOpt(t, cap).misses;
      EXPECT_LE(opt, simulateLru(t, cap).misses) << "seed " << seed;
      EXPECT_LE(opt, simulateFifo(t, cap).misses) << "seed " << seed;
    }
  }
}

TEST(Opt, MonotoneInCapacity) {
  Trace t = randomTrace(3, 800, 60);
  i64 prev = simulateOpt(t, 1).misses;
  for (i64 cap = 2; cap <= 64; cap *= 2) {
    i64 cur = simulateOpt(t, cap).misses;
    EXPECT_LE(cur, prev);
    prev = cur;
  }
}

TEST(Opt, CapacityOneStillReusesConsecutive) {
  Trace t = makeTrace({7, 7, 7, 8, 8});
  SimResult r = simulateOpt(t, 1);
  EXPECT_EQ(r.misses, 2);
  EXPECT_EQ(r.hits, 3);
}

TEST(Opt, ExactRationalReuseFactor) {
  Trace t = makeTrace({1, 1, 1, 2});
  SimResult r = simulateOpt(t, 1);
  EXPECT_EQ(r.reuseFactorExact(), dr::support::Rational(4, 2));
}

TEST(Lru, Basics) {
  Trace t = makeTrace({1, 2, 3, 1, 2, 3});
  EXPECT_EQ(simulateLru(t, 2).misses, 6);  // classic LRU thrashing
  EXPECT_EQ(simulateLru(t, 3).misses, 3);
}

TEST(Fifo, BeladyAnomalyTrace) {
  // FIFO famously admits Belady's anomaly; just pin behaviour on the
  // canonical trace: 12 accesses, capacity 3 -> 9 misses, capacity 4 -> 10.
  Trace t = makeTrace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  EXPECT_EQ(simulateFifo(t, 3).misses, 9);
  EXPECT_EQ(simulateFifo(t, 4).misses, 10);
}

TEST(Policies, DispatchMatches) {
  Trace t = randomTrace(9, 300, 30);
  EXPECT_EQ(simulate(t, 8, Policy::Opt).misses, simulateOpt(t, 8).misses);
  EXPECT_EQ(simulate(t, 8, Policy::Lru).misses, simulateLru(t, 8).misses);
  EXPECT_EQ(simulate(t, 8, Policy::Fifo).misses, simulateFifo(t, 8).misses);
}

// Property: the one-pass Mattson histogram equals per-capacity LRU
// simulation for every capacity (the inclusion property made countable).
class LruStackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LruStackProperty, MatchesDirectSimulation) {
  Trace t = randomTrace(GetParam(), 500, 37);
  LruStackDistances stack(t);
  for (i64 cap = 0; cap <= 40; ++cap)
    EXPECT_EQ(stack.missesAt(cap), simulateLru(t, cap).misses)
        << "capacity " << cap;
  EXPECT_EQ(stack.coldMisses(), t.distinctCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LruStackProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 29));

// Property: the one-pass OPT stack-distance histogram is *exact* — it
// reproduces the per-size Belady simulation at every capacity from 0 to
// past the distinct count, on random traces of several shapes.
class OptStackProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OptStackProperty, MatchesDirectSimulationAtEveryCapacity) {
  const std::uint64_t seed = GetParam();
  // Vary trace length and universe with the seed to cover dense reuse,
  // sparse reuse, and near-scan shapes.
  const i64 length = 200 + static_cast<i64>(seed % 5) * 150;
  const i64 universe = 7 + static_cast<i64>(seed % 7) * 13;
  Trace t = randomTrace(seed, length, universe);
  OptStackDistances stack(t);
  const std::vector<i64> nextUse = computeNextUse(t);
  const i64 distinct = t.distinctCount();
  for (i64 cap = 0; cap <= distinct + 2; ++cap)
    EXPECT_EQ(stack.missesAt(cap), simulateOpt(t, cap, nextUse).misses)
        << "seed " << seed << " capacity " << cap;
  EXPECT_EQ(stack.coldMisses(), distinct);
  EXPECT_EQ(stack.accesses(), t.length());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptStackProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 23, 29, 41, 97));

TEST(OptStack, ClassicBeladyHistogram) {
  // 1,2,3,4,1,2,5,1,2,3,4,5: 7 reuse intervals, cumulative hits at
  // capacities 1..5 are 2,4,5,6,7 (checked against Belady by hand).
  Trace t = makeTrace({1, 2, 3, 4, 1, 2, 5, 1, 2, 3, 4, 5});
  OptStackDistances stack(t);
  EXPECT_EQ(stack.coldMisses(), 5);
  EXPECT_EQ(stack.missesAt(3), 7);  // the textbook miss count
  std::vector<i64> expectedHist = {0, 2, 2, 1, 1, 1};
  EXPECT_EQ(stack.histogram(), expectedHist);
}

TEST(OptStack, SaturationSizeMatchesBinarySearchDefinition) {
  for (std::uint64_t seed : {2u, 8u, 19u}) {
    Trace t = randomTrace(seed, 1200, 80);
    OptStackDistances stack(t);
    const i64 sat = stack.saturationSize();
    EXPECT_EQ(simulateOpt(t, sat).misses, t.distinctCount());
    if (sat > 1) {
      EXPECT_GT(simulateOpt(t, sat - 1).misses, t.distinctCount());
    }
  }
}

TEST(OptStack, EmptyAndTrivialTraces) {
  Trace empty;
  OptStackDistances e(empty);
  EXPECT_EQ(e.accesses(), 0);
  EXPECT_EQ(e.missesAt(4), 0);
  EXPECT_EQ(e.saturationSize(), 0);

  Trace scan;
  for (i64 i = 0; i < 50; ++i) scan.addresses.push_back(i);
  OptStackDistances s(scan);
  EXPECT_EQ(s.coldMisses(), 50);
  EXPECT_EQ(s.missesAt(1), 50);
  EXPECT_EQ(s.saturationSize(), 1);
}

TEST(LruStack, SequentialScanHasNoHits) {
  Trace t;
  for (i64 i = 0; i < 100; ++i) t.addresses.push_back(i);
  LruStackDistances stack(t);
  EXPECT_EQ(stack.coldMisses(), 100);
  EXPECT_EQ(stack.missesAt(1000), 100);
}

TEST(LruStack, ResultAtFillsFields) {
  Trace t = makeTrace({1, 2, 1});
  LruStackDistances stack(t);
  SimResult r = stack.resultAt(2);
  EXPECT_EQ(r.capacity, 2);
  EXPECT_EQ(r.accesses, 3);
  EXPECT_EQ(r.misses, 2);
  EXPECT_EQ(r.hits, 1);
}

TEST(ReuseCurve, GridCoversRangeSortedUnique) {
  auto sizes = sizeGrid(10000, 16, 1.5);
  EXPECT_EQ(sizes.front(), 1);
  EXPECT_EQ(sizes.back(), 10000);
  for (std::size_t i = 1; i < sizes.size(); ++i)
    EXPECT_LT(sizes[i - 1], sizes[i]);
}

TEST(ReuseCurve, GridNearUnityGrowthTerminatesWithoutDuplicates) {
  // Growth factors close to 1 used to stall the double-based stepping
  // (s * growth truncating back to s); the integer stepping must advance
  // by at least 1, stay strictly increasing, and still hit maxSize.
  for (double growth : {1.0001, 1.01, 1.1}) {
    auto sizes = sizeGrid(500, 8, growth);
    EXPECT_EQ(sizes.front(), 1);
    EXPECT_EQ(sizes.back(), 500);
    for (std::size_t i = 1; i < sizes.size(); ++i)
      EXPECT_LT(sizes[i - 1], sizes[i]) << "growth " << growth;
  }
  // Degenerate corners.
  EXPECT_EQ(sizeGrid(1, 64).size(), 1u);
  auto tiny = sizeGrid(3, 1, 1.001);
  EXPECT_EQ(tiny.front(), 1);
  EXPECT_EQ(tiny.back(), 3);
}

TEST(ReuseCurve, EveryPolicyMatchesPerSizeSimulation) {
  // The curve sweeps route through the one-pass engines (OPT, LRU) and the
  // parallel per-size sweep (FIFO); all must equal the plain per-size
  // simulators point for point.
  Trace t = randomTrace(5, 1500, 90);
  std::vector<i64> sizes = sizeGrid(128, 16);
  for (Policy policy : {Policy::Opt, Policy::Lru, Policy::Fifo}) {
    ReuseCurve curve = simulateReuseCurve(t, sizes, policy);
    ASSERT_EQ(curve.points.size(), sizes.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      SimResult ref = simulate(t, sizes[i], policy);
      EXPECT_EQ(curve.points[i].size, sizes[i]);
      EXPECT_EQ(curve.points[i].writes, ref.misses);
      EXPECT_EQ(curve.points[i].reads, ref.accesses);
      EXPECT_DOUBLE_EQ(curve.points[i].reuseFactor, ref.reuseFactor());
    }
  }
}

TEST(ReuseCurve, MonotoneAndSaturates) {
  Trace t = randomTrace(17, 2000, 100);
  ReuseCurve curve = simulateReuseCurve(t, sizeGrid(128, 16));
  double prev = 0.0;
  for (const ReusePoint& p : curve.points) {
    EXPECT_GE(p.reuseFactor, prev - 1e-12);
    prev = p.reuseFactor;
    EXPECT_EQ(p.reads, t.length());
  }
  double maxFr =
      static_cast<double>(t.length()) / static_cast<double>(t.distinctCount());
  EXPECT_NEAR(curve.maxReuseFactor(), maxFr, 1e-9);
}

TEST(ReuseCurve, SmallestSizeReaching) {
  Trace t = makeTrace({1, 2, 1, 2, 1, 2});
  ReuseCurve curve = simulateReuseCurve(t, {1, 2, 3});
  EXPECT_EQ(curve.smallestSizeReaching(3.0), 2);
  EXPECT_EQ(curve.smallestSizeReaching(100.0), -1);
}

TEST(ReuseCurve, OptSaturationSizeExact) {
  // Working set of the (x, dx) window pattern: A[x+dx], dx in [0, 2]:
  // element x+2 is first read at x and last at x+2 -> needs 3 slots... but
  // OPT saturates (compulsory-only misses) at the max overlap = window.
  dr::test::PairBox box{0, 19, 0, 2};
  auto p = dr::test::genericDoubleLoop(box, 1, 1);
  dr::trace::AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, 0);
  i64 sat = optSaturationSize(t);
  SimResult atSat = simulateOpt(t, sat);
  EXPECT_EQ(atSat.misses, t.distinctCount());
  if (sat > 1) {
    EXPECT_GT(simulateOpt(t, sat - 1).misses, t.distinctCount());
  }
}

TEST(ReuseCurve, KneeDetection) {
  ReuseCurve curve;
  curve.points = {{1, 100, 100, 1.0},
                  {2, 100, 100, 1.01},
                  {3, 20, 100, 5.0},
                  {4, 19, 100, 5.2}};
  auto knees = findKnees(curve, 1.5);
  ASSERT_EQ(knees.size(), 1u);
  EXPECT_EQ(knees[0], 2u);
}

}  // namespace

// ---------------------------------------------------------------------------
// Hierarchical chain simulation (chain_sim.h): the paper's Section 3
// composability claim.

#include "simcore/chain_sim.h"
#include "kernels/motion_estimation.h"
#include "trace/address_map.h"

namespace {

TEST(ChainSim, MissStreamMatchesMissCount) {
  Trace t = randomTrace(21, 3000, 120);
  auto nu = computeNextUse(t);
  Trace misses;
  SimResult r = simulateOptWithMissStream(t, 24, nu, misses);
  EXPECT_EQ(static_cast<i64>(misses.addresses.size()), r.misses);
  // Every distinct element must appear in the miss stream at least once.
  EXPECT_EQ(misses.distinctCount(), t.distinctCount());
}

TEST(ChainSim, CapacityOrderEnforced) {
  Trace t = randomTrace(1, 100, 10);
  EXPECT_THROW(simulateOptChain(t, {8, 8}), dr::support::ContractViolation);
  EXPECT_THROW(simulateOptChain(t, {}), dr::support::ContractViolation);
  EXPECT_THROW(simulateOptChain(t, {0}), dr::support::ContractViolation);
}

TEST(ChainSim, ExactCompositionOnLoopDominatedTrace) {
  // Paper Section 3: C_j independent of the other levels — exact on the
  // motion-estimation trace at working-set knee capacities.
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  dr::trace::AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, p.findSignal("Old"));
  std::vector<i64> caps = {1521, 148, 12};
  auto chain = simulateOptChain(t, caps);
  for (std::size_t j = 0; j < caps.size(); ++j)
    EXPECT_EQ(chain.perLevel[j].misses, simulateOpt(t, caps[j]).misses)
        << "level " << j;
  // The innermost level always sees the raw datapath trace.
  EXPECT_EQ(chain.perLevel.back().accesses, t.length());
}

TEST(ChainSim, FilteringNeverHurtsOuterLevels) {
  // On arbitrary traces the filtered request stream can only reduce the
  // outer levels' misses: eq. (3) stays a safe upper bound.
  for (std::uint64_t seed : {3u, 7u, 13u}) {
    Trace t = randomTrace(seed, 8000, 150);
    std::vector<i64> caps = {96, 24};
    auto chain = simulateOptChain(t, caps);
    for (std::size_t j = 0; j < caps.size(); ++j)
      EXPECT_LE(chain.perLevel[j].misses, simulateOpt(t, caps[j]).misses);
    // And deeper levels still see every compulsory miss.
    EXPECT_GE(chain.perLevel[0].misses, t.distinctCount());
  }
}

TEST(ChainSim, SingleLevelEqualsPlainSimulation) {
  Trace t = randomTrace(9, 2000, 64);
  auto chain = simulateOptChain(t, {32});
  EXPECT_EQ(chain.perLevel[0].misses, simulateOpt(t, 32).misses);
}

TEST(ChainSim, BatchMatchesIndividualChains) {
  Trace t = randomTrace(33, 4000, 130);
  std::vector<std::vector<i64>> chains = {
      {96, 24}, {128, 64, 8}, {40}, {130, 90, 50, 10}, {2, 1}};
  auto batch = simulateOptChains(t, chains);
  ASSERT_EQ(batch.size(), chains.size());
  for (std::size_t i = 0; i < chains.size(); ++i) {
    auto single = simulateOptChain(t, chains[i]);
    ASSERT_EQ(batch[i].perLevel.size(), single.perLevel.size());
    EXPECT_EQ(batch[i].datapathReads, single.datapathReads);
    for (std::size_t j = 0; j < single.perLevel.size(); ++j) {
      EXPECT_EQ(batch[i].perLevel[j].misses, single.perLevel[j].misses)
          << "chain " << i << " level " << j;
      EXPECT_EQ(batch[i].perLevel[j].accesses, single.perLevel[j].accesses);
    }
  }
}

// The acceptance bar of the one-pass engine: on the motion-estimation
// trace the fast reuse curve must equal per-size Belady simulation
// point-for-point — identical sizes, writes, reads, reuse factors — and
// therefore identical knees A_1..A_4.
TEST(ChainSim, MotionEstimationCurveIdenticalToPerSizeSimulation) {
  auto p = dr::kernels::motionEstimation({32, 32, 4, 4});
  dr::trace::AddressMap map(p);
  Trace t = dr::trace::readTrace(p, map, p.findSignal("Old"));
  std::vector<i64> sizes = sizeGrid(std::max<i64>(1, t.distinctCount()), 32);

  ReuseCurve fast = simulateReuseCurve(t, sizes, Policy::Opt);

  ReuseCurve reference;
  const std::vector<i64> nextUse = computeNextUse(t);
  for (i64 size : sizes) {
    SimResult r = simulateOpt(t, size, nextUse);
    reference.points.push_back({size, r.misses, r.accesses, r.reuseFactor()});
  }

  ASSERT_EQ(fast.points.size(), reference.points.size());
  for (std::size_t i = 0; i < reference.points.size(); ++i) {
    EXPECT_EQ(fast.points[i].size, reference.points[i].size);
    EXPECT_EQ(fast.points[i].writes, reference.points[i].writes);
    EXPECT_EQ(fast.points[i].reads, reference.points[i].reads);
    EXPECT_DOUBLE_EQ(fast.points[i].reuseFactor,
                     reference.points[i].reuseFactor);
  }
  EXPECT_EQ(findKnees(fast), findKnees(reference));
  EXPECT_EQ(optSaturationSize(t),
            OptStackDistances(t).saturationSize());
}

}  // namespace
