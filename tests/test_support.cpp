// Unit tests for the support module: integer math, rationals, matrices,
// strings, datasets, CLI parsing, RNG determinism.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

#include "support/budget.h"
#include "support/cli.h"
#include "support/contracts.h"
#include "support/dataset.h"
#include "support/intmath.h"
#include "support/matrix.h"
#include "support/parallel.h"
#include "support/rng.h"
#include "support/strings.h"

namespace {

using namespace dr::support;

TEST(IntMath, GcdBasics) {
  EXPECT_EQ(gcd(12, 18), 6);
  EXPECT_EQ(gcd(18, 12), 6);
  EXPECT_EQ(gcd(7, 13), 1);
  EXPECT_EQ(gcd(0, 5), 5);
  EXPECT_EQ(gcd(5, 0), 5);
  EXPECT_EQ(gcd(0, 0), 0);
}

TEST(IntMath, GcdNegativeOperands) {
  EXPECT_EQ(gcd(-12, 18), 6);
  EXPECT_EQ(gcd(12, -18), 6);
  EXPECT_EQ(gcd(-12, -18), 6);
}

TEST(IntMath, Lcm) {
  EXPECT_EQ(lcm(4, 6), 12);
  EXPECT_EQ(lcm(0, 6), 0);
  EXPECT_EQ(lcm(-4, 6), 12);
}

TEST(IntMath, FloorDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_THROW(floorDiv(1, 0), ContractViolation);
}

TEST(IntMath, CeilDiv) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(6, 3), 2);
  EXPECT_THROW(ceilDiv(1, 0), ContractViolation);
}

TEST(IntMath, Mod) {
  EXPECT_EQ(mod(7, 3), 1);
  EXPECT_EQ(mod(-7, 3), 2);
  EXPECT_EQ(mod(-7, -3), 2);
  EXPECT_EQ(mod(0, 5), 0);
  EXPECT_THROW(mod(1, 0), ContractViolation);
}

TEST(IntMath, FloorDivModConsistency) {
  for (i64 a = -20; a <= 20; ++a)
    for (i64 b : {-7, -3, -1, 1, 2, 5}) {
      EXPECT_EQ(floorDiv(a, b) * b + (a - floorDiv(a, b) * b), a);
      if (b > 0) {
        EXPECT_EQ(a - floorDiv(a, b) * b, mod(a, b));
      }
    }
}

TEST(IntMath, CheckedOverflowDetection) {
  i64 big = std::numeric_limits<i64>::max();
  EXPECT_THROW(checkedAdd(big, 1), ContractViolation);
  EXPECT_THROW(checkedMul(big, 2), ContractViolation);
  EXPECT_THROW(checkedSub(std::numeric_limits<i64>::min(), 1),
               ContractViolation);
  EXPECT_EQ(checkedAdd(2, 3), 5);
  EXPECT_EQ(checkedMul(-4, 5), -20);
  EXPECT_EQ(checkedSub(2, 5), -3);
}

TEST(Rational, CanonicalForm) {
  Rational r(6, 4);
  EXPECT_EQ(r.num(), 3);
  EXPECT_EQ(r.den(), 2);
  Rational neg(3, -6);
  EXPECT_EQ(neg.num(), -1);
  EXPECT_EQ(neg.den(), 2);
  EXPECT_THROW(Rational(1, 0), ContractViolation);
}

TEST(Rational, Arithmetic) {
  Rational a(1, 2), b(1, 3);
  EXPECT_EQ(a + b, Rational(5, 6));
  EXPECT_EQ(a - b, Rational(1, 6));
  EXPECT_EQ(a * b, Rational(1, 6));
  EXPECT_EQ(a / b, Rational(3, 2));
  EXPECT_EQ(-a, Rational(-1, 2));
  EXPECT_THROW(a / Rational(0), ContractViolation);
}

TEST(Rational, Comparison) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 2), Rational(3));
  EXPECT_LE(Rational(2, 4), Rational(1, 2));
  EXPECT_GE(Rational(1, 2), Rational(2, 4));
  EXPECT_NE(Rational(1, 2), Rational(1, 3));
}

TEST(Rational, ConversionsAndStr) {
  EXPECT_DOUBLE_EQ(Rational(1, 4).toDouble(), 0.25);
  EXPECT_TRUE(Rational(8, 4).isInteger());
  EXPECT_FALSE(Rational(1, 4).isInteger());
  EXPECT_EQ(Rational(7, 2).str(), "7/2");
  EXPECT_EQ(Rational(6, 2).str(), "3");
}

TEST(Rational, LargeValuesCrossReduce) {
  // 10^9/2 * 2/10^9 must not overflow thanks to cross-reduction.
  Rational a(1000000000, 2), b(2, 1000000000);
  EXPECT_EQ(a * b, Rational(1));
}

TEST(IntMatrix, RankZero) {
  IntMatrix z(3, 2);
  EXPECT_EQ(z.rank(), 0);
  EXPECT_TRUE(z.isZero());
}

TEST(IntMatrix, RankOneProportionalRows) {
  IntMatrix m{{2, -4}, {1, -2}, {-3, 6}};
  EXPECT_EQ(m.rank(), 1);
}

TEST(IntMatrix, RankTwo) {
  IntMatrix m{{1, 0}, {0, 1}};
  EXPECT_EQ(m.rank(), 2);
  IntMatrix me{{0, 0}, {1, 1}, {1, -1}};
  EXPECT_EQ(me.rank(), 2);
}

TEST(IntMatrix, RankOfMotionEstimationB) {
  // Paper Section 6.3: the (i5,i6) pair has rank 2, the (i4,..,i6) pair
  // rank 1.
  IntMatrix inner{{1, 0}, {0, -1}};
  EXPECT_EQ(inner.rank(), 2);
  IntMatrix outer{{0, 0}, {1, -1}};
  EXPECT_EQ(outer.rank(), 1);
}

TEST(IntMatrix, RankBiggerDense) {
  IntMatrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  EXPECT_EQ(m.rank(), 2);  // classic singular example
  IntMatrix full{{2, 0, 0}, {0, 3, 0}, {0, 0, 5}};
  EXPECT_EQ(full.rank(), 3);
}

TEST(IntMatrix, TransposePreservesRank) {
  IntMatrix m{{1, 2, 3}, {2, 4, 6}};
  EXPECT_EQ(m.rank(), 1);
  EXPECT_EQ(m.transposed().rank(), 1);
  EXPECT_EQ(m.transposed().rows(), 3);
}

TEST(IntMatrix, AccessorsAndValidation) {
  IntMatrix m(2, 2);
  m.at(0, 1) = 7;
  EXPECT_EQ(m.at(0, 1), 7);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW((IntMatrix{{1, 2}, {3}}), ContractViolation);
}

TEST(Strings, JoinSplitTrim) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("   "), "");
  EXPECT_TRUE(startsWith("--flag", "--"));
  EXPECT_FALSE(startsWith("-", "--"));
}

TEST(Strings, FmtAndIndent) {
  EXPECT_EQ(fmtDouble(3.14159, 2), "3.14");
  EXPECT_EQ(fmtDouble(2.0, 0), "2");
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
  EXPECT_EQ(indent("a\n\nb", 2), "  a\n\n  b");  // blank lines stay blank
}

TEST(DataSet, RowsAndRendering) {
  DataSet ds("curve", {"size", "fr"});
  ds.addRow({2.0, 10.0});
  ds.addRow({1.0, 5.0});
  EXPECT_EQ(ds.rowCount(), 2u);
  EXPECT_THROW(ds.addRow({1.0}), ContractViolation);
  ds.sortByColumn(0);
  EXPECT_DOUBLE_EQ(ds.row(0)[0], 1.0);
  std::string csv = ds.toCsv(1);
  EXPECT_NE(csv.find("size,fr"), std::string::npos);
  EXPECT_NE(csv.find("1.0,5.0"), std::string::npos);
  std::string gp = ds.toGnuplot(1);
  EXPECT_NE(gp.find("# curve"), std::string::npos);
  std::string table = ds.toTable(1);
  EXPECT_NE(table.find("== curve =="), std::string::npos);
}

TEST(Cli, ParsesForms) {
  const char* argv[] = {"prog", "--a=1", "--b", "2", "--flag"};
  CliOptions cli(5, argv);
  EXPECT_EQ(cli.getInt("a", 0), 1);
  EXPECT_EQ(cli.getInt("b", 0), 2);
  EXPECT_TRUE(cli.getBool("flag", false));
  EXPECT_EQ(cli.getInt("absent", 9), 9);
  EXPECT_TRUE(cli.unusedNames().empty());
}

TEST(Cli, RejectsBadInput) {
  const char* pos[] = {"prog", "stray"};
  EXPECT_THROW(CliOptions(2, pos), ContractViolation);
  const char* bad[] = {"prog", "--n=abc"};
  CliOptions cli(2, bad);
  EXPECT_THROW(cli.getInt("n", 0), ContractViolation);
}

TEST(Cli, ParsesExploreKernelFlagSet) {
  // The full explore_kernel surface, --cache-dir included, in all three
  // argument forms (--k=v, --k v, bare flag).
  const char* argv[] = {"prog",          "--kernel",    "k.krn",
                        "--signal=Old",  "--cache-dir", "/tmp/warm",
                        "--journal",     "j.journal",   "--no-resume",
                        "--deadline-ms", "250",         "--curve-out=c.csv",
                        "--orderings=64"};
  CliOptions cli(13, argv);
  EXPECT_EQ(cli.getString("kernel", ""), "k.krn");
  EXPECT_EQ(cli.getString("signal", ""), "Old");
  EXPECT_EQ(cli.getString("cache-dir", ""), "/tmp/warm");
  EXPECT_EQ(cli.getString("journal", ""), "j.journal");
  EXPECT_TRUE(cli.getBool("no-resume", false));
  EXPECT_EQ(cli.getInt("deadline-ms", 0), 250);
  EXPECT_EQ(cli.getString("curve-out", ""), "c.csv");
  EXPECT_EQ(cli.getInt("orderings", 0), 64);
  EXPECT_FALSE(cli.getBool("no-sim", false));  // absent: fallback
  EXPECT_TRUE(cli.unusedNames().empty());
}

TEST(Cli, UnusedNamesReported) {
  const char* argv[] = {"prog", "--typo=1"};
  CliOptions cli(2, argv);
  auto unused = cli.unusedNames();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
    double d = r.uniform01();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
  EXPECT_THROW(r.uniform(3, 2), dr::support::ContractViolation);
}

TEST(Contracts, MacrosThrowWithContext) {
  try {
    DR_REQUIRE_MSG(false, "details here");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("details here"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("precondition"), std::string::npos);
  }
}

}  // namespace

namespace {

TEST(DataSet, WriteFileRoundTrip) {
  std::string path = ::testing::TempDir() + "dr_dataset_test.dat";
  dr::support::DataSet ds("t", {"a"});
  ds.addRow({1.5});
  dr::support::DataSet::writeFile(path, ds.toGnuplot());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "# t");
  std::remove(path.c_str());
}

TEST(DataSet, WriteFileFailsOnBadPath) {
  EXPECT_THROW(dr::support::DataSet::writeFile("/nonexistent-dir/x.dat", "y"),
               dr::support::ContractViolation);
}

TEST(Parallel, ThreadCountIsPositive) {
  EXPECT_GE(parallelThreads(), 1);
}

TEST(Parallel, CoversEveryIndexExactlyOnce) {
  const i64 n = 10'000;
  std::vector<std::atomic<int>> counts(static_cast<std::size_t>(n));
  parallelFor(n, [&](i64 i) {
    counts[static_cast<std::size_t>(i)].fetch_add(1);
  });
  for (i64 i = 0; i < n; ++i)
    ASSERT_EQ(counts[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
}

TEST(Parallel, PerIndexSlotsMatchSerialResult) {
  const i64 n = 513;
  std::vector<i64> serial(static_cast<std::size_t>(n));
  std::vector<i64> parallel(static_cast<std::size_t>(n));
  auto compute = [](i64 i) { return i * i + 7; };
  for (i64 i = 0; i < n; ++i) serial[static_cast<std::size_t>(i)] = compute(i);
  parallelFor(n, [&](i64 i) {
    parallel[static_cast<std::size_t>(i)] = compute(i);
  });
  EXPECT_EQ(parallel, serial);
}

TEST(Parallel, ExplicitSingleThreadRunsSerially) {
  // threads=1 must run inline on the caller, in order.
  std::vector<i64> order;
  parallelFor(64, [&](i64 i) { order.push_back(i); }, /*threads=*/1);
  ASSERT_EQ(order.size(), 64u);
  for (i64 i = 0; i < 64; ++i)
    EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Parallel, PropagatesFirstException) {
  EXPECT_THROW(
      parallelFor(500,
                  [](i64 i) {
                    if (i == 137) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must stay usable afterwards.
  std::atomic<i64> sum{0};
  parallelFor(100, [&](i64 i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 99 * 100 / 2);
}

TEST(Parallel, NestedCallsDegradeToSerial) {
  std::vector<std::atomic<int>> counts(64 * 16);
  parallelFor(64, [&](i64 outer) {
    parallelFor(16, [&](i64 inner) {
      counts[static_cast<std::size_t>(outer * 16 + inner)].fetch_add(1);
    });
  });
  for (auto& c : counts) ASSERT_EQ(c.load(), 1);
}

TEST(Parallel, ZeroAndOneSizedLoops) {
  int calls = 0;
  parallelFor(0, [&](i64) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(1, [&](i64 i) {
    EXPECT_EQ(i, 0);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
  EXPECT_THROW(parallelFor(-1, [](i64) {}), dr::support::ContractViolation);
}

// --- status / expected ----------------------------------------------------

TEST(Status, OkByDefaultAndErrorCarriesDiagnostics) {
  dr::support::Status ok;
  EXPECT_TRUE(ok.isOk());
  EXPECT_EQ(ok.code(), dr::support::StatusCode::Ok);

  auto st = dr::support::Status::error(
      dr::support::StatusCode::InvalidInput, "2 problems",
      {{"1:2", "first"}, {"3:4", "second"}});
  EXPECT_FALSE(st.isOk());
  ASSERT_EQ(st.diagnostics().size(), 2u);
  EXPECT_EQ(st.diagnostics()[0].str(), "1:2: first");
  st.addDiagnostic({"", "unlocated"});
  EXPECT_EQ(st.diagnostics()[2].str(), "unlocated");
  // str() renders one line per problem.
  EXPECT_NE(st.str().find("invalid input"), std::string::npos);
  EXPECT_NE(st.str().find("3:4: second"), std::string::npos);
}

TEST(Status, ErrorRequiresNonOkCode) {
  EXPECT_THROW(
      dr::support::Status::error(dr::support::StatusCode::Ok, "nope"),
      dr::support::ContractViolation);
}

TEST(Expected, ValueAndStatusPaths) {
  dr::support::Expected<int> good(7);
  ASSERT_TRUE(good.hasValue());
  EXPECT_EQ(*good, 7);
  EXPECT_TRUE(good.status().isOk());

  dr::support::Expected<int> bad(dr::support::Status::error(
      dr::support::StatusCode::IoError, "disk on fire"));
  EXPECT_FALSE(bad.hasValue());
  EXPECT_EQ(bad.status().code(), dr::support::StatusCode::IoError);
  EXPECT_THROW((void)bad.value(), dr::support::ContractViolation);
}

// --- atomic dataset writes ------------------------------------------------

TEST(DataSet, WriteIsAtomicViaTempAndRename) {
  const std::string path = ::testing::TempDir() + "dr_atomic.dat";
  std::remove(path.c_str());
  ASSERT_TRUE(
      dr::support::DataSet::writeFileStatus(path, "payload\n").isOk());
  std::ifstream f(path);
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "payload");
  // The temp staging file never survives a successful commit.
  EXPECT_FALSE(std::ifstream(path + ".tmp").good());
  std::remove(path.c_str());
}

TEST(DataSet, WriteFileStatusReportsIoErrorOnBadPath) {
  auto st = dr::support::DataSet::writeFileStatus(
      "/nonexistent-dir/out.dat", "x");
  EXPECT_EQ(st.code(), dr::support::StatusCode::IoError);
}

// --- non-throwing CLI parse + guarded main --------------------------------

TEST(Cli, ParseReturnsStatusOnPositionalArgument) {
  const char* argv[] = {"prog", "stray"};
  auto r = dr::support::CliOptions::parse(2, argv);
  ASSERT_FALSE(r.hasValue());
  EXPECT_EQ(r.status().code(), dr::support::StatusCode::InvalidInput);
}

TEST(Cli, ParseMatchesThrowingConstructor) {
  const char* argv[] = {"prog", "--a=1", "--flag", "--b", "2"};
  auto r = dr::support::CliOptions::parse(5, argv);
  ASSERT_TRUE(r.hasValue());
  EXPECT_EQ(r->getInt("a", 0), 1);
  EXPECT_TRUE(r->getBool("flag", false));
  EXPECT_EQ(r->getInt("b", 0), 2);
}

TEST(Cli, GuardedMainTranslatesFailures) {
  EXPECT_EQ(dr::support::guardedMain([] { return 0; }), 0);
  EXPECT_EQ(dr::support::guardedMain([]() -> int {
              throw std::runtime_error("user-visible failure");
            }),
            1);
  EXPECT_EQ(dr::support::guardedMain([]() -> int {
              DR_REQUIRE_MSG(false, "library bug");
              return 0;
            }),
            2);
}

// --- budget-aware parallel sweeps -----------------------------------------

TEST(Parallel, BudgetOverloadSkipsAfterTrip) {
  dr::support::RunBudget b;
  b.cancel();
  std::atomic<int> ran{0};
  dr::support::parallelFor(64, &b, [&](i64) { ++ran; });
  EXPECT_EQ(ran.load(), 0);  // tripped before any index was claimed
}

TEST(Parallel, NullBudgetRunsEverything) {
  std::atomic<int> ran{0};
  dr::support::parallelFor(64, nullptr, [&](i64) { ++ran; });
  EXPECT_EQ(ran.load(), 64);
}

TEST(Rng, MixSeedIsDeterministicAndSensitiveToEveryInput) {
  using dr::support::mixSeed;
  EXPECT_EQ(mixSeed(1, 2, 3), mixSeed(1, 2, 3));
  EXPECT_NE(mixSeed(1, 2, 3), mixSeed(1, 2, 4));
  EXPECT_NE(mixSeed(1, 2, 3), mixSeed(1, 3, 3));
  EXPECT_NE(mixSeed(1, 2, 3), mixSeed(2, 2, 3));
  // (task, attempt) pairs must not collide along the retry ladder: the
  // backoff jitter of task i attempt a is its own reproducible stream.
  std::vector<std::uint64_t> seen;
  for (std::uint64_t task = 0; task < 64; ++task)
    for (std::uint64_t attempt = 1; attempt <= 4; ++attempt)
      seen.push_back(mixSeed(7, task, attempt));
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(std::adjacent_find(seen.begin(), seen.end()), seen.end());
}

TEST(Parallel, IsolatedRetriesUntilSuccess) {
  constexpr i64 kTasks = 32;
  std::vector<std::atomic<int>> attempts(kTasks);
  dr::support::IsolatedOptions iso;
  iso.maxAttempts = 3;
  const auto statuses = dr::support::parallelForIsolated(
      kTasks, iso, [&](i64 i, int attempt) {
        attempts[static_cast<std::size_t>(i)] = attempt;
        // Every odd task needs the full retry ladder; even ones pass at
        // once.
        if (i % 2 == 1 && attempt < 3)
          return dr::support::Status::error(
              dr::support::StatusCode::Internal, "flaky");
        return dr::support::Status::ok();
      });
  ASSERT_EQ(statuses.size(), static_cast<std::size_t>(kTasks));
  for (i64 i = 0; i < kTasks; ++i) {
    EXPECT_TRUE(statuses[static_cast<std::size_t>(i)].isOk()) << i;
    EXPECT_EQ(attempts[static_cast<std::size_t>(i)].load(),
              i % 2 == 1 ? 3 : 1)
        << i;
  }
}

TEST(Parallel, IsolatedExhaustionPoisonsOnlyItsOwnSlot) {
  dr::support::IsolatedOptions iso;
  iso.maxAttempts = 2;
  const auto statuses = dr::support::parallelForIsolated(
      16, iso, [&](i64 i, int) {
        if (i == 5)
          return dr::support::Status::error(
              dr::support::StatusCode::IoError, "disk on fire");
        if (i == 9) throw std::runtime_error("task blew up");
        return dr::support::Status::ok();
      });
  for (i64 i = 0; i < 16; ++i) {
    const auto& st = statuses[static_cast<std::size_t>(i)];
    if (i == 5) {
      EXPECT_EQ(st.code(), dr::support::StatusCode::IoError);
      EXPECT_NE(st.str().find("disk on fire"), std::string::npos);
    } else if (i == 9) {
      // Exceptions are captured, never rethrown out of the sweep.
      EXPECT_EQ(st.code(), dr::support::StatusCode::Internal);
      EXPECT_NE(st.str().find("task blew up"), std::string::npos);
    } else {
      EXPECT_TRUE(st.isOk()) << i;
    }
  }
}

TEST(Parallel, IsolatedPreTrippedBudgetRecordsItsStatus) {
  dr::support::RunBudget b;
  b.cancel();
  dr::support::IsolatedOptions iso;
  iso.budget = &b;
  std::atomic<int> ran{0};
  const auto statuses = dr::support::parallelForIsolated(
      8, iso, [&](i64, int) {
        ++ran;
        return dr::support::Status::ok();
      });
  EXPECT_EQ(ran.load(), 0);
  for (const auto& st : statuses) EXPECT_FALSE(st.isOk());
}

TEST(Parallel, IsolatedBackoffStaysDeterministicUnderThreads) {
  // A tiny real backoff exercises the jitter path; the recorded attempt
  // counts must not depend on scheduling.
  dr::support::IsolatedOptions iso;
  iso.maxAttempts = 3;
  iso.backoffBase = std::chrono::microseconds(1);
  iso.seed = 99;
  std::vector<std::atomic<int>> attempts(24);
  const auto statuses = dr::support::parallelForIsolated(
      24, iso, [&](i64 i, int attempt) {
        attempts[static_cast<std::size_t>(i)] = attempt;
        if (attempt < 2)
          return dr::support::Status::error(
              dr::support::StatusCode::Internal, "first try always fails");
        return dr::support::Status::ok();
      });
  for (i64 i = 0; i < 24; ++i) {
    EXPECT_TRUE(statuses[static_cast<std::size_t>(i)].isOk());
    EXPECT_EQ(attempts[static_cast<std::size_t>(i)].load(), 2);
  }
}

}  // namespace
