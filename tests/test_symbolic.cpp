// Symbolic reuse-profile engine (analytic/symbolic_hist.h): the closed
// forms must be byte-identical to the brute-force stack accumulators on
// every covered kernel and every covered random nest, reject everything
// else with an actionable reason, reproduce the paper's Fig. 4a knees
// without walking a single trace event, and plug into the explorer as
// the top fidelity rung.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analytic/symbolic_curve.h"
#include "analytic/symbolic_hist.h"
#include "explorer/explorer.h"
#include "kernels/conv2d.h"
#include "kernels/matmul.h"
#include "kernels/motion_estimation.h"
#include "kernels/susan.h"
#include "kernels/wavelet.h"
#include "loopir/normalize.h"
#include "report/report.h"
#include "service/metrics.h"
#include "simcore/folded_curve.h"
#include "simcore/reuse_curve.h"
#include "simcore/stream_stack.h"
#include "trace/period.h"
#include "trace/stream.h"
#include "trace/walker.h"

namespace {

using dr::support::i64;
using dr::loopir::Program;
using dr::simcore::Policy;
using dr::simcore::StackHistogram;

/// Element-wise reference: the whole filtered read stream through the
/// plain stack accumulators.
StackHistogram brute(const Program& pn, int signal, Policy pol) {
  dr::trace::AddressMap map(pn);
  dr::trace::TraceFilter f;
  f.signal = signal;
  const auto [lo, hi] = [&] {
    dr::trace::TraceCursor c(pn, map, f);
    return c.addressRange();
  }();
  dr::simcore::LruStackAccumulator lru;
  dr::simcore::OptStackAccumulator opt;
  dr::simcore::StreamingDensifier den(lo, hi);
  dr::trace::walk(pn, map, f, [&](const dr::trace::AccessEvent& ev) {
    const i64 id = den.idOf(ev.address);
    if (pol == Policy::Lru)
      lru.push(id);
    else
      opt.push(id);
  });
  return pol == Policy::Lru ? lru.finalize() : opt.finalize();
}

void expectSameHist(const StackHistogram& a, const StackHistogram& b,
                    const std::string& tag) {
  EXPECT_EQ(a.accesses, b.accesses) << tag;
  EXPECT_EQ(a.coldMisses, b.coldMisses) << tag;
  EXPECT_EQ(a.histogram, b.histogram) << tag;
}

int sigOf(const Program& p, const char* name) {
  const int s = p.findSignal(name);
  EXPECT_GE(s, 0) << name;
  return s;
}

/// Symbolic must accept and match the brute-force histogram bin for bin.
void checkMatches(const Program& p, int signal, Policy pol,
                  const std::string& tag) {
  auto sym = dr::analytic::symbolicStackHistogram(p, signal, pol);
  ASSERT_TRUE(sym.hasValue()) << tag << ": " << sym.status().str();
  expectSameHist(sym->hist, brute(dr::loopir::normalized(p), signal, pol),
                 tag);
}

TEST(SymbolicVsBrute, MotionEstimationZoo) {
  struct MP { i64 H, W, n, m; };
  // Covers the explicit path, each single-axis banding, and both-axes
  // banding (272 is frame-scale relative to the 4/2 window geometry).
  for (MP mp : {MP{16, 16, 4, 2}, MP{24, 16, 4, 4}, MP{32, 32, 8, 2},
                MP{272, 16, 4, 2}, MP{16, 272, 4, 2}, MP{272, 272, 4, 2}}) {
    dr::kernels::MotionEstimationParams par;
    par.H = mp.H; par.W = mp.W; par.n = mp.n; par.m = mp.m;
    const Program p = dr::kernels::motionEstimation(par);
    const std::string tag = "ME " + std::to_string(mp.H) + "x" +
                            std::to_string(mp.W) + " n" +
                            std::to_string(mp.n) + " m" +
                            std::to_string(mp.m);
    // Old: sliding-window class, LRU only (OPT asserted separately).
    checkMatches(p, sigOf(p, "Old"), Policy::Lru, tag + " Old LRU");
    // New: cyclic class, policy-agnostic — both policies must hold.
    checkMatches(p, sigOf(p, "New"), Policy::Lru, tag + " New LRU");
    checkMatches(p, sigOf(p, "New"), Policy::Opt, tag + " New OPT");
  }
}

TEST(SymbolicVsBrute, Conv2dAndMatmul) {
  for (i64 HW : {8, 12}) {
    dr::kernels::Conv2dParams cp;
    cp.H = HW; cp.W = HW; cp.R = 1;
    const Program p = dr::kernels::conv2d(cp);
    const std::string tag = "conv2d " + std::to_string(HW);
    checkMatches(p, sigOf(p, "img"), Policy::Lru, tag + " img LRU");
    checkMatches(p, sigOf(p, "w"), Policy::Lru, tag + " w LRU");
    checkMatches(p, sigOf(p, "w"), Policy::Opt, tag + " w OPT");
  }
  dr::kernels::MatmulParams mp;
  mp.N = 5; mp.K = 4;
  const Program p = dr::kernels::matmul(mp);
  for (const char* sig : {"A", "B"}) {
    checkMatches(p, sigOf(p, sig), Policy::Lru,
                 std::string("matmul ") + sig + " LRU");
    checkMatches(p, sigOf(p, sig), Policy::Opt,
                 std::string("matmul ") + sig + " OPT");
  }
}

TEST(Symbolic, RejectionReasonsAreActionable) {
  // OPT on a sliding-window signal: slot occupancy drifts, only the LRU
  // closed form exists. The reason names both halves of the failure.
  {
    const Program p = dr::kernels::motionEstimation({});
    auto r = dr::analytic::symbolicStackHistogram(p, sigOf(p, "Old"),
                                                  Policy::Opt);
    ASSERT_FALSE(r.hasValue());
    EXPECT_EQ(r.status().code(), dr::support::StatusCode::InvalidInput);
    EXPECT_NE(r.status().message().find("LRU-only"), std::string::npos)
        << r.status().str();
  }
  // Wavelet lifting reads x[2*i + ...]: the level image has holes, the
  // sliding-window geometry does not apply.
  {
    const Program p = dr::kernels::waveletLifting({});
    auto r = dr::analytic::symbolicStackHistogram(p, sigOf(p, "x"),
                                                  Policy::Lru);
    ASSERT_FALSE(r.hasValue());
    EXPECT_NE(r.status().message().find("not dense"), std::string::npos)
        << r.status().str();
  }
  // SUSAN reads the image across a series of nests; the closed forms
  // cover one nest.
  {
    const Program p = dr::kernels::susan({});
    auto r = dr::analytic::symbolicStackHistogram(p, sigOf(p, "image"),
                                                  Policy::Lru);
    ASSERT_FALSE(r.hasValue());
    EXPECT_NE(r.status().message().find("single nest"), std::string::npos)
        << r.status().str();
  }
}

TEST(Symbolic, OutOfRangeFramesSurfaceAsStatus) {
  // Absurd frame sizes must come back as a checked status — a distance
  // past the histogram bound or an i64 overflow in the event count —
  // never as a wrong histogram or a crash.
  for (const i64 side : {i64{1} << 22, i64{1} << 31}) {
    dr::kernels::MotionEstimationParams par;
    par.H = side;
    par.W = side;
    const Program p = dr::kernels::motionEstimation(par);
    auto r = dr::analytic::symbolicStackHistogram(p, sigOf(p, "Old"),
                                                  Policy::Lru);
    ASSERT_FALSE(r.hasValue()) << side;
    EXPECT_TRUE(r.status().code() == dr::support::StatusCode::Overflow ||
                r.status().code() == dr::support::StatusCode::InvalidInput)
        << r.status().str();
  }
}

TEST(Symbolic, QcifMatchesFoldedLruAndQueryCostIsFrameIndependent) {
  // QCIF: the symbolic LRU curve must be byte-identical to the folded
  // LRU engine at every queried size.
  dr::kernels::MotionEstimationParams par;
  par.H = 144; par.W = 176; par.n = 8; par.m = 8;
  const Program p = dr::kernels::motionEstimation(par);
  const int old = sigOf(p, "Old");
  auto cur = dr::analytic::symbolicReuseCurve(p, old, Policy::Lru);
  ASSERT_TRUE(cur.hasValue()) << cur.status().str();

  const Program pn = dr::loopir::normalized(p);
  dr::trace::AddressMap map(pn);
  dr::trace::TraceFilter tf;
  tf.signal = old;
  dr::trace::TraceCursor cursor(pn, map, tf);
  const auto period = dr::trace::detectPeriod(cursor.nests());
  dr::simcore::FoldedStats stats;
  const StackHistogram h = dr::simcore::foldedStackHistogram(
      cursor, period, Policy::Lru, &stats, {});
  for (const auto& pt : cur->curve.points) {
    const auto r = h.resultAt(pt.size);
    EXPECT_EQ(pt.writes, r.misses) << "size " << pt.size;
    EXPECT_EQ(pt.reads, r.accesses) << "size " << pt.size;
    EXPECT_EQ(pt.fidelity, dr::simcore::Fidelity::Symbolic);
  }

  // Frame-size independence: the iteration-class space the engine
  // enumerates is a function of the window geometry, not the frame, so
  // the work (explicit cells) is identical from QCIF to 8K.
  dr::kernels::MotionEstimationParams hd = par;
  hd.H = 4320; hd.W = 7680;
  auto hdHist = dr::analytic::symbolicStackHistogram(
      dr::kernels::motionEstimation(hd), old, Policy::Lru);
  ASSERT_TRUE(hdHist.hasValue()) << hdHist.status().str();
  EXPECT_EQ(hdHist->explicitCells, cur->detail.explicitCells);
  EXPECT_EQ(hdHist->bandedLevels, cur->detail.bandedLevels);
}

TEST(Symbolic, MotionEstimationKneesQcif) {
  // The four discontinuities A_1..A_4 of Fig. 4a (FR 5.6 / ~32 / ~84 /
  // 213.6), reproduced from the symbolic engine's output alone — no
  // trace, no fold, no simulation anywhere in this test.
  dr::kernels::MotionEstimationParams par;
  par.H = 144; par.W = 176; par.n = 8; par.m = 8;
  const Program p = dr::kernels::motionEstimation(par);
  auto cur = dr::analytic::symbolicReuseCurve(p, sigOf(p, "Old"),
                                              Policy::Lru);
  ASSERT_TRUE(cur.hasValue()) << cur.status().str();

  const auto knees = dr::simcore::findKnees(cur->curve, 1.2);
  ASSERT_EQ(knees.size(), 4u);
  const i64 expectedLo[4] = {48, 150, 350, 2500};
  const i64 expectedHi[4] = {72, 240, 680, 4500};
  const double expectedFr[4] = {5.6, 32.0, 84.0, 213.6};
  const double frTol[4] = {0.5, 4.0, 6.0, 0.5};
  for (int i = 0; i < 4; ++i) {
    const auto& pt = cur->curve.points[knees[static_cast<std::size_t>(i)]];
    EXPECT_GE(pt.size, expectedLo[i]) << "knee " << i;
    EXPECT_LE(pt.size, expectedHi[i]) << "knee " << i;
    EXPECT_NEAR(pt.reuseFactor, expectedFr[i], frTol[i]) << "knee " << i;
  }
}

TEST(ExplorerSymbolic, AutoUpgradesCoveredSignalsToSymbolic) {
  // ME New is cyclic under both policies: the Auto engine answers it
  // symbolically — zero simulated events, exact, top rung.
  dr::kernels::MotionEstimationParams par;
  par.H = 32; par.W = 32; par.n = 4; par.m = 2;
  const Program p = dr::kernels::motionEstimation(par);
  const int sig = sigOf(p, "New");

  dr::explorer::ExploreOptions opts;
  const auto ex = dr::explorer::exploreSignal(p, sig, opts);
  EXPECT_EQ(ex.curveFidelity, dr::simcore::Fidelity::Symbolic);
  EXPECT_EQ(ex.simulationStats.fidelity, dr::simcore::Fidelity::Symbolic);
  EXPECT_EQ(ex.simulationStats.simulatedEvents, 0);
  EXPECT_TRUE(ex.simulationStats.exact);
  EXPECT_TRUE(ex.simulationStats.completed);
  for (const auto& pt : ex.simulatedCurve.points)
    EXPECT_EQ(pt.fidelity, dr::simcore::Fidelity::Symbolic);

  // Byte-identity with the forced streaming pipeline: same sizes, same
  // counts, only the fidelity tag differs.
  dr::explorer::ExploreOptions stream = opts;
  stream.engine = dr::explorer::SimEngine::Streaming;
  const auto ref = dr::explorer::exploreSignal(p, sig, stream);
  ASSERT_EQ(ex.simulatedCurve.points.size(),
            ref.simulatedCurve.points.size());
  for (std::size_t i = 0; i < ex.simulatedCurve.points.size(); ++i) {
    EXPECT_EQ(ex.simulatedCurve.points[i].size,
              ref.simulatedCurve.points[i].size);
    EXPECT_EQ(ex.simulatedCurve.points[i].writes,
              ref.simulatedCurve.points[i].writes);
    EXPECT_EQ(ex.simulatedCurve.points[i].reads,
              ref.simulatedCurve.points[i].reads);
  }
  EXPECT_EQ(ex.Ctot, ref.Ctot);
  EXPECT_EQ(ex.distinctElements, ref.distinctElements);
}

TEST(ExplorerSymbolic, AutoFallsBackWhereClosedFormsDoNotApply) {
  // ME Old is sliding-window (LRU-only), so the OPT sweep cannot use the
  // symbolic engine: Auto falls through to the fold, same as before.
  dr::kernels::MotionEstimationParams par;
  par.H = 32; par.W = 32; par.n = 4; par.m = 2;
  const Program p = dr::kernels::motionEstimation(par);
  const auto ex = dr::explorer::exploreSignal(p, sigOf(p, "Old"), {});
  EXPECT_NE(ex.curveFidelity, dr::simcore::Fidelity::Symbolic);
  EXPECT_GT(ex.simulationStats.simulatedEvents, 0);
}

TEST(ExplorerSymbolic, StrictEngineRejectsUncoveredSignals) {
  const Program p = dr::kernels::susan({});
  dr::explorer::ExploreOptions opts;
  opts.engine = dr::explorer::SimEngine::Symbolic;
  auto ex = dr::explorer::exploreSignalChecked(p, sigOf(p, "image"), opts);
  ASSERT_FALSE(ex.hasValue());
  EXPECT_EQ(ex.status().code(), dr::support::StatusCode::InvalidInput);
  EXPECT_NE(ex.status().message().find("symbolic"), std::string::npos)
      << ex.status().str();
}

TEST(ExplorerSymbolic, StrictEngineMatchesStreamingCounts) {
  dr::kernels::Conv2dParams cp;
  cp.H = 16; cp.W = 16; cp.R = 1;
  const Program p = dr::kernels::conv2d(cp);
  const int sig = sigOf(p, "w");

  dr::explorer::ExploreOptions symOpts;
  symOpts.engine = dr::explorer::SimEngine::Symbolic;
  auto sym = dr::explorer::exploreSignalChecked(p, sig, symOpts);
  ASSERT_TRUE(sym.hasValue()) << sym.status().str();

  dr::explorer::ExploreOptions strOpts;
  strOpts.engine = dr::explorer::SimEngine::Streaming;
  auto str = dr::explorer::exploreSignalChecked(p, sig, strOpts);
  ASSERT_TRUE(str.hasValue()) << str.status().str();

  ASSERT_EQ(sym->simulatedCurve.points.size(),
            str->simulatedCurve.points.size());
  for (std::size_t i = 0; i < sym->simulatedCurve.points.size(); ++i) {
    EXPECT_EQ(sym->simulatedCurve.points[i].size,
              str->simulatedCurve.points[i].size);
    EXPECT_EQ(sym->simulatedCurve.points[i].writes,
              str->simulatedCurve.points[i].writes);
    EXPECT_EQ(sym->simulatedCurve.points[i].reads,
              str->simulatedCurve.points[i].reads);
  }
  EXPECT_EQ(sym->curveFidelity, dr::simcore::Fidelity::Symbolic);
}

TEST(ServiceMetrics, EngineMixCountersRenderAndReport) {
  dr::service::Metrics m;
  m.recordEngine(
      static_cast<std::uint8_t>(dr::simcore::Fidelity::Symbolic), false, 0,
      0, 0);
  m.recordEngine(static_cast<std::uint8_t>(dr::simcore::Fidelity::ExactFold),
                 true, 120, 900, 1000);
  const auto s = m.snapshot();
  EXPECT_EQ(s.curvesSymbolic, 1);
  EXPECT_EQ(s.curvesExactFold, 1);
  EXPECT_EQ(s.runsDecoded, 120);
  EXPECT_EQ(s.runFastEvents, 900);
  EXPECT_EQ(s.runFallbackEvents, 100);  // 1000 simulated - 900 fast

  const std::string rendered = dr::service::Metrics::render(s);
  EXPECT_NE(rendered.find("curves_symbolic 1"), std::string::npos);
  EXPECT_NE(rendered.find("run_fallback_events 100"), std::string::npos);

  const std::string report = dr::report::metricsReport(s);
  EXPECT_NE(report.find("Engine mix"), std::string::npos);
  EXPECT_NE(report.find("symbolic (closed form)"), std::string::npos);
  EXPECT_NE(report.find("fell back to per-element pushes"),
            std::string::npos);
}

}  // namespace
