// Unit tests for the trace module: address mapping (incl. halo padding),
// the iteration-space walker, time-frame analysis, lifetimes, the
// single-assignment check and per-signal statistics.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "helpers.h"
#include "kernels/motion_estimation.h"
#include "support/contracts.h"
#include "loopir/normalize.h"
#include "trace/address_map.h"
#include "trace/lifetime.h"
#include "trace/single_assign.h"
#include "trace/stats.h"
#include "trace/timeframe.h"
#include "trace/walker.h"

namespace {

using namespace dr::trace;
using dr::support::i64;
using dr::test::genericDoubleLoop;
using dr::test::PairBox;

TEST(AffineRange, ExactOverBox) {
  dr::loopir::LoopNest nest;
  nest.loops = {dr::loopir::Loop{"j", -2, 3, 1},
                dr::loopir::Loop{"k", 0, 4, 1}};
  dr::loopir::AffineExpr e(10);
  e.setCoeff(0, 2);
  e.setCoeff(1, -3);
  ValueRange r = affineRange(e, nest);
  EXPECT_EQ(r.min, 2 * -2 - 3 * 4 + 10);  // -6
  EXPECT_EQ(r.max, 2 * 3 - 3 * 0 + 10);   // 16
  EXPECT_EQ(r.extent(), 23);
}

TEST(AddressMap, HaloPaddingAvoidsAliasing) {
  // Access A[j][k + off] with k + off running past the declared width W:
  // without padding, (r, W+1) would alias (r+1, 1).
  dr::loopir::Program p;
  int sig = dr::loopir::addSignal(p, "A", {4, 4}, 8);
  dr::loopir::LoopNest nest;
  nest.loops = {dr::loopir::Loop{"j", 0, 3, 1},
                dr::loopir::Loop{"k", 0, 5, 1}};  // k up to 5 > W-1
  dr::loopir::ArrayAccess acc;
  acc.signal = sig;
  acc.kind = dr::loopir::AccessKind::Read;
  acc.indices = {dr::loopir::AffineExpr::iterator(0),
                 dr::loopir::AffineExpr::iterator(1)};
  nest.body.push_back(acc);
  p.nests.push_back(nest);

  AddressMap map(p);
  EXPECT_EQ(map.paddedRange(0)[1].extent(), 6);
  std::set<i64> addrs;
  for (i64 j = 0; j < 4; ++j)
    for (i64 k = 0; k < 6; ++k) addrs.insert(map.address(0, {j, k}));
  EXPECT_EQ(addrs.size(), 24u);  // all distinct
}

TEST(AddressMap, DisjointSignalRanges) {
  auto p = genericDoubleLoop({0, 3, 0, 3}, 1, 1);
  dr::loopir::addSignal(p, "B", {10}, 8);
  AddressMap map(p);
  EXPECT_EQ(map.base(0), 0);
  EXPECT_GE(map.base(1), map.paddedElementCount(0));
  EXPECT_EQ(map.signalOf(map.address(1, {3})), 1);
  EXPECT_EQ(map.signalOf(map.address(0, {0})), 0);
  EXPECT_EQ(map.signalOf(-1), -1);
}

TEST(AddressMap, RejectsOutOfPaddedRange) {
  auto p = genericDoubleLoop({0, 3, 0, 3}, 1, 1);
  AddressMap map(p);
  EXPECT_THROW(map.address(0, {100}), dr::support::ContractViolation);
}

TEST(Walker, ProducesProgramOrderTrace) {
  // A[2j + k], j,k in [0,2): order (0,0)(0,1)(1,0)(1,1) -> 0,1,2,3.
  auto p = genericDoubleLoop({0, 1, 0, 1}, 2, 1);
  AddressMap map(p);
  Trace t = readTrace(p, map, 0);
  ASSERT_EQ(t.length(), 4);
  i64 base = t.addresses[0];
  EXPECT_EQ(t.addresses[1], base + 1);
  EXPECT_EQ(t.addresses[2], base + 2);
  EXPECT_EQ(t.addresses[3], base + 3);
}

TEST(Walker, FiltersBySignalAndKind) {
  auto p = genericDoubleLoop({0, 1, 0, 1}, 1, 1);
  // Add a write access to a second signal.
  int b = dr::loopir::addSignal(p, "B", {4}, 8);
  dr::loopir::ArrayAccess w;
  w.signal = b;
  w.kind = dr::loopir::AccessKind::Write;
  dr::loopir::AffineExpr e;
  e.setCoeff(1, 1);
  w.indices = {e};
  p.nests[0].body.push_back(w);

  AddressMap map(p);
  TraceFilter readsOnly;
  readsOnly.signal = 0;
  EXPECT_EQ(collectTrace(p, map, readsOnly).length(), 4);
  TraceFilter writesOnly;
  writesOnly.includeReads = false;
  writesOnly.includeWrites = true;
  EXPECT_EQ(collectTrace(p, map, writesOnly).length(), 4);
  TraceFilter one;
  one.nest = 0;
  one.accessIndex = 1;
  one.includeWrites = true;
  one.includeReads = false;
  EXPECT_EQ(collectTrace(p, map, one).length(), 4);
}

TEST(Walker, DecrementalLoopOrder) {
  auto p = genericDoubleLoop({0, 0, 0, 3}, 0, 1);
  p.nests[0].loops[1] = dr::loopir::Loop{"k", 3, 0, -1};
  AddressMap map(p);
  Trace t = readTrace(p, map, 0);
  ASSERT_EQ(t.length(), 4);
  EXPECT_GT(t.addresses[0], t.addresses[3]);
}

TEST(Walker, NormalizedTraceIdentical) {
  auto p = genericDoubleLoop({0, 5, 0, 7}, 3, 2, 1);
  p.nests[0].loops[0].step = 2;
  p.nests[0].loops[0].end = 10;
  p.nests[0].loops[1] = dr::loopir::Loop{"k", 7, 0, -1};
  auto n = dr::loopir::normalized(p);
  AddressMap mp(p);
  AddressMap mn(n);
  Trace tp = readTrace(p, mp, 0);
  Trace tn = readTrace(n, mn, 0);
  ASSERT_EQ(tp.length(), tn.length());
  for (i64 i = 0; i < tp.length(); ++i)
    EXPECT_EQ(tp.addresses[static_cast<std::size_t>(i)],
              tn.addresses[static_cast<std::size_t>(i)]);
}

TEST(Walker, MotionEstimationCounts) {
  dr::kernels::MotionEstimationParams mp;
  mp.H = 16;
  mp.W = 16;
  mp.n = 4;
  mp.m = 2;
  auto p = dr::kernels::motionEstimation(mp);
  AddressMap map(p);
  Trace t = readTrace(p, map, p.findSignal("Old"));
  // (H/n)*(W/n)*(2m)^2*n^2 accesses.
  EXPECT_EQ(t.length(), 4 * 4 * 4 * 4 * 4 * 4);
  // Distinct elements: row index n*i1+i3+i5 spans [-m, H+m-2], i.e.
  // H+2m-1 = 19 values; same horizontally.
  EXPECT_EQ(t.distinctCount(), 19 * 19);
}

TEST(TimeFrames, WorkingSetsShrinkWithFrames) {
  // Fig. 1's message: per-frame distinct elements << total distinct.
  dr::kernels::MotionEstimationParams mp;
  mp.H = 16;
  mp.W = 16;
  mp.n = 4;
  mp.m = 2;
  auto p = dr::kernels::motionEstimation(mp);
  AddressMap map(p);
  Trace t = readTrace(p, map, p.findSignal("Old"));
  TimeFrameReport rep = analyzeTimeFrames(t, 16);
  EXPECT_EQ(rep.totalAccesses, t.length());
  EXPECT_EQ(static_cast<i64>(rep.frames.size()), 16);
  EXPECT_LT(rep.maxFrameDistinct, static_cast<double>(rep.totalDistinct));
  i64 sum = 0;
  for (const TimeFrame& f : rep.frames) sum += f.accessCount;
  EXPECT_EQ(sum, t.length());
}

TEST(TimeFrames, SingleFrameIsWholeTrace) {
  auto p = genericDoubleLoop({0, 3, 0, 3}, 1, 1);
  AddressMap map(p);
  Trace t = readTrace(p, map, 0);
  TimeFrameReport rep = analyzeTimeFrames(t, 1);
  ASSERT_EQ(rep.frames.size(), 1u);
  EXPECT_EQ(rep.frames[0].distinctElements, rep.totalDistinct);
  EXPECT_THROW(analyzeTimeFrames(t, 0), dr::support::ContractViolation);
}

TEST(Lifetimes, SimplePattern) {
  Trace t;
  t.addresses = {1, 2, 1, 3, 2};
  LifetimeStats stats = analyzeLifetimes(t);
  EXPECT_EQ(stats.distinctElements, 3);
  // live after each access: {1}=1, {1,2}=2, {1->dies}=2, {2,3}->3 dies at
  // its only access... addr3 lives [3,3], addr2 [1,4].
  EXPECT_EQ(stats.maxLive, 2);
  EXPECT_EQ(stats.maxLifetime, 4);  // addr 2: positions 1..4
  auto live = liveProfile(t);
  EXPECT_EQ(live.front(), 1);
  EXPECT_EQ(live.back(), 1);
}

TEST(Lifetimes, AllDistinct) {
  Trace t;
  t.addresses = {5, 6, 7};
  LifetimeStats stats = analyzeLifetimes(t);
  EXPECT_EQ(stats.maxLive, 1);
  EXPECT_EQ(stats.maxLifetime, 1);
}

TEST(SingleAssignment, CleanKernelPasses) {
  auto p = dr::kernels::motionEstimation(
      {16, 16, 4, 2, /*includeAccumulatorWrites=*/false});
  AddressMap map(p);
  EXPECT_TRUE(checkSingleAssignment(p, map).empty());
}

TEST(SingleAssignment, AccumulatorWritesDetected) {
  // The realistic accumulator variant updates each distance n*n times —
  // exactly what DTSE pre-processing (paper Section 3 step 1) must fix.
  auto p = dr::kernels::motionEstimation(
      {16, 16, 4, 2, /*includeAccumulatorWrites=*/true});
  AddressMap map(p);
  auto violations = checkSingleAssignment(p, map);
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().writeCount, 4 * 4);
  std::string desc = describeViolations(p, violations);
  EXPECT_NE(desc.find("Dist"), std::string::npos);
}

TEST(Stats, PerSignalTotals) {
  auto p = dr::kernels::motionEstimation({16, 16, 4, 2, true});
  AddressMap map(p);
  auto stats = signalStats(p, map);
  ASSERT_EQ(stats.size(), 3u);
  i64 iters = p.nests[0].iterationCount();
  EXPECT_EQ(stats[0].reads, iters);  // New
  EXPECT_EQ(stats[1].reads, iters);  // Old
  EXPECT_EQ(stats[2].writes, iters); // Dist
  EXPECT_EQ(stats[2].reads, 0);
  EXPECT_EQ(stats[1].distinctRead, 19 * 19);
  EXPECT_EQ(stats[2].distinctWritten, 4 * 4 * 4 * 4);
}

TEST(DenseTrace, FirstAppearanceNumberingRoundTrips) {
  std::vector<i64> addrs = {100, 7, 100, -3, 7, 100};
  dr::trace::DenseTrace dense = dr::trace::densify(addrs);
  EXPECT_EQ(dense.length(), 6);
  EXPECT_EQ(dense.distinct(), 3);
  std::vector<i64> expectedIds = {0, 1, 0, 2, 1, 0};
  EXPECT_EQ(dense.ids, expectedIds);
  std::vector<i64> expectedBack = {100, 7, -3};
  EXPECT_EQ(dense.idToAddress, expectedBack);
}

TEST(DenseTrace, SparseAddressesTakeHashFallback) {
  // Extent far beyond 8n forces the hash path; semantics must not change.
  std::vector<i64> addrs = {1'000'000'000, -1'000'000'000, 1'000'000'000, 0};
  dr::trace::DenseTrace dense = dr::trace::densify(addrs);
  EXPECT_EQ(dense.distinct(), 3);
  std::vector<i64> expectedIds = {0, 1, 0, 2};
  EXPECT_EQ(dense.ids, expectedIds);
  for (std::size_t t = 0; t < addrs.size(); ++t)
    EXPECT_EQ(dense.idToAddress[static_cast<std::size_t>(dense.ids[t])],
              addrs[t]);
}

TEST(DenseTrace, EmptyTrace) {
  dr::trace::DenseTrace dense = dr::trace::densify(std::vector<i64>{});
  EXPECT_EQ(dense.length(), 0);
  EXPECT_EQ(dense.distinct(), 0);
}

TEST(DenseTrace, DistinctCountAgreesWithSortUnique) {
  auto p = dr::kernels::motionEstimation({16, 16, 4, 2});
  AddressMap map(p);
  auto t = dr::trace::readTrace(p, map, p.findSignal("Old"));
  std::vector<i64> sorted = t.addresses;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  EXPECT_EQ(t.distinctCount(), static_cast<i64>(sorted.size()));
  EXPECT_EQ(dr::trace::densify(t).distinct(), static_cast<i64>(sorted.size()));
}

}  // namespace
